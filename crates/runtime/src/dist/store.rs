//! Rank-local sharded storage.
//!
//! Each rank holds only its shard of every f64 field — the elements of
//! `owned ∪ ghosts` from the [`ExchangePlan`] — laid out densely in
//! ascending global index order, with global→local translation through a
//! precomputed [`LocalMap`] (prefix-summed interval runs, with a
//! zero-search fast path when the footprint is one contiguous run).
//! Ptr/Range topology fields are replicated in full: they describe the
//! mesh/matrix structure, are never written during parallel phases, and
//! partitioning functions read them at arbitrary indices.
//!
//! Failing to translate an index *is* the distributed legality check: an
//! access that reaches an element outside `owned ∪ ghosts` has no local
//! slot, which the rank context reports as a violation instead of reading
//! garbage.
//!
//! All bulk movement (sharding, pack/unpack, gather) walks the *runs* of
//! the transfer sets with `copy_from_slice` instead of translating element
//! by element. That is sound because `IndexSet` runs are canonical
//! (sorted, disjoint, non-adjacent): any run of a subset lies entirely
//! inside a single run of its superset, so a run of a transfer set — a
//! subset of the field's local footprint — always maps to one contiguous
//! local slice.

use partir_core::exchange::{ExchangePlan, FieldSets};
use partir_dpl::index_set::{Idx, IndexSet};
use partir_dpl::region::{FieldId, FieldKind, Store};

/// Precomputed global→local translation for one field's footprint:
/// the canonical runs of the footprint set plus the prefix-summed local
/// position of each run's first element.
pub(crate) struct LocalMap {
    /// `(start, end)` global runs, ascending and non-adjacent.
    runs: Vec<(Idx, Idx)>,
    /// `starts[k]`: local position of `runs[k].0`.
    starts: Vec<u64>,
    /// When the footprint is a single run `[s, e)`, translation is just
    /// `i - s` — the common case for block-owned interiors.
    dense: Option<(Idx, Idx)>,
}

impl LocalMap {
    pub(crate) fn new(set: &IndexSet) -> Self {
        let runs = set.runs().to_vec();
        let mut starts = Vec::with_capacity(runs.len());
        let mut acc = 0u64;
        for &(s, e) in &runs {
            starts.push(acc);
            acc += e - s;
        }
        let dense = match runs.as_slice() {
            [one] => Some(*one),
            _ => None,
        };
        LocalMap { runs, starts, dense }
    }

    /// Local position of global element `i`, `None` when not resident.
    #[inline]
    pub(crate) fn pos(&self, i: Idx) -> Option<u64> {
        if let Some((s, e)) = self.dense {
            return (i >= s && i < e).then(|| i - s);
        }
        let k = self.runs.partition_point(|&(s, _)| s <= i);
        if k == 0 {
            return None;
        }
        let (s, e) = self.runs[k - 1];
        (i < e).then(|| self.starts[k - 1] + (i - s))
    }

    /// Total resident elements.
    fn len(&self) -> u64 {
        match (self.runs.last(), self.starts.last()) {
            (Some(&(s, e)), Some(&p)) => p + (e - s),
            _ => 0,
        }
    }
}

/// One field's rank-local storage.
enum RankField {
    /// Sharded f64 payload: `data[local.pos(i)]` holds global element `i`.
    F64 {
        local: LocalMap,
        data: Vec<f64>,
    },
    /// Replicated topology.
    Ptr(Vec<Idx>),
    Range(Vec<(Idx, Idx)>),
}

/// The shard of the global [`Store`] resident on one rank.
pub struct RankStore {
    fields: Vec<RankField>,
}

impl RankStore {
    /// Shards `store` for `rank` per the exchange plan's local footprints,
    /// copying each footprint run with one `extend_from_slice`.
    pub fn shard(store: &Store, xplan: &ExchangePlan, rank: usize) -> Self {
        let schema = store.schema();
        let fields = (0..schema.num_fields())
            .map(|fi| {
                let f = FieldId(fi as u32);
                let decl = schema.field(f);
                match decl.kind {
                    FieldKind::F64 => {
                        let set = xplan.local(decl.region, rank);
                        let local = LocalMap::new(set);
                        let global = store.f64s(f);
                        let mut data = Vec::with_capacity(local.len() as usize);
                        for &(s, e) in set.runs() {
                            data.extend_from_slice(&global[s as usize..e as usize]);
                        }
                        RankField::F64 { local, data }
                    }
                    FieldKind::Ptr(_) => RankField::Ptr(store.ptrs(f).to_vec()),
                    FieldKind::Range(_) => RankField::Range(store.ranges(f).to_vec()),
                }
            })
            .collect();
        RankStore { fields }
    }

    /// Reads global element `i`; `None` when it is not locally resident
    /// (a distributed legality violation at the caller).
    #[inline]
    pub fn try_read_f64(&self, f: FieldId, i: Idx) -> Option<f64> {
        match &self.fields[f.0 as usize] {
            RankField::F64 { local, data } => local.pos(i).map(|p| data[p as usize]),
            _ => None,
        }
    }

    /// Writes global element `i`; `false` when it is not locally resident.
    #[inline]
    pub fn try_write_f64(&mut self, f: FieldId, i: Idx, v: f64) -> bool {
        match &mut self.fields[f.0 as usize] {
            RankField::F64 { local, data } => match local.pos(i) {
                Some(p) => {
                    data[p as usize] = v;
                    true
                }
                None => false,
            },
            _ => false,
        }
    }

    #[inline]
    pub fn read_ptr(&self, f: FieldId, i: Idx) -> Idx {
        match &self.fields[f.0 as usize] {
            RankField::Ptr(v) => v[i as usize],
            _ => panic!("field {f:?} is not Ptr"),
        }
    }

    #[inline]
    pub fn read_range(&self, f: FieldId, i: Idx) -> (Idx, Idx) {
        match &self.fields[f.0 as usize] {
            RankField::Range(v) => v[i as usize],
            _ => panic!("field {f:?} is not Range"),
        }
    }

    /// Packs the values of `sets` (plan order: ascending field, ascending
    /// element) into `out`, returning how many elements were packed — one
    /// contiguous copy per run. Every run must be locally resident: the
    /// exchange plan only asks a rank to pack what it holds.
    pub fn pack(&self, sets: &FieldSets, out: &mut Vec<f64>) -> usize {
        let before = out.len();
        for (f, set) in sets {
            let RankField::F64 { local, data } = &self.fields[f.0 as usize] else {
                panic!("exchange set over non-f64 field {f:?}");
            };
            for &(s, e) in set.runs() {
                let p = local.pos(s).expect("packed run is locally resident") as usize;
                out.extend_from_slice(&data[p..p + (e - s) as usize]);
            }
        }
        out.len() - before
    }

    /// Installs packed `values` into the elements of `sets` — one
    /// contiguous copy per run — consuming the prefix and returning the
    /// rest (messages concatenate several set lists).
    pub fn unpack<'v>(&mut self, sets: &FieldSets, mut values: &'v [f64]) -> &'v [f64] {
        for (f, set) in sets {
            let RankField::F64 { local, data } = &mut self.fields[f.0 as usize] else {
                panic!("exchange set over non-f64 field {f:?}");
            };
            for &(s, e) in set.runs() {
                let n = (e - s) as usize;
                let p = local.pos(s).expect("unpacked run is locally resident") as usize;
                data[p..p + n].copy_from_slice(&values[..n]);
                values = &values[n..];
            }
        }
        values
    }

    /// The rank's owned f64 shards, for the final gather into the caller's
    /// store: `(field, values over xplan.owned(region, rank))`.
    pub fn extract_owned(
        &self,
        xplan: &ExchangePlan,
        rank: usize,
        store_schema: &partir_dpl::region::Schema,
    ) -> Vec<(FieldId, Vec<f64>)> {
        (0..store_schema.num_fields())
            .filter_map(|fi| {
                let f = FieldId(fi as u32);
                let decl = store_schema.field(f);
                if !matches!(decl.kind, FieldKind::F64) {
                    return None;
                }
                let owned = xplan.owned(decl.region, rank);
                let RankField::F64 { local, data } = &self.fields[f.0 as usize] else {
                    unreachable!();
                };
                let mut vals = Vec::with_capacity(owned.len() as usize);
                for &(s, e) in owned.runs() {
                    let p = local.pos(s).expect("owned ⊆ local") as usize;
                    vals.extend_from_slice(&data[p..p + (e - s) as usize]);
                }
                Some((f, vals))
            })
            .collect()
    }

    /// Installs a gathered shard into the global store (main thread, after
    /// the SPMD scope ends) — one contiguous copy per owned run.
    pub fn install_owned(
        store: &mut Store,
        xplan: &ExchangePlan,
        rank: usize,
        shards: Vec<(FieldId, Vec<f64>)>,
    ) {
        for (f, vals) in shards {
            let region = store.schema().field(f).region;
            let owned = xplan.owned(region, rank).clone();
            let fs = store.f64s_mut(f);
            let mut p = 0usize;
            for &(s, e) in owned.runs() {
                let n = (e - s) as usize;
                fs[s as usize..e as usize].copy_from_slice(&vals[p..p + n]);
                p += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_dpl::region::Schema;

    #[test]
    fn non_resident_access_is_detected() {
        let mut schema = Schema::new();
        let r = schema.add_region("R", 8);
        let f = schema.add_field(r, "x", FieldKind::F64);
        let mut store = Store::new(schema.clone());
        for i in 0..8 {
            store.f64s_mut(f)[i] = i as f64;
        }
        // A fake single-field plan: pretend rank 0 holds [0,4).
        // Build via RankField directly to keep the test self-contained.
        let mut rs = RankStore {
            fields: vec![RankField::F64 {
                local: LocalMap::new(&IndexSet::from_range(0, 4)),
                data: vec![0.0, 1.0, 2.0, 3.0],
            }],
        };
        assert_eq!(rs.try_read_f64(f, 2), Some(2.0));
        assert_eq!(rs.try_read_f64(f, 6), None);
        assert!(rs.try_write_f64(f, 3, 9.0));
        assert!(!rs.try_write_f64(f, 5, 9.0));
        assert_eq!(rs.try_read_f64(f, 3), Some(9.0));
    }

    #[test]
    fn local_map_translates_multi_run_footprints() {
        // Footprint {2,3} ∪ {10..13} ∪ {20}: positions 0,1,2,3,4,5.
        let set = IndexSet::from_indices([2, 3, 10, 11, 12, 20]);
        let m = LocalMap::new(&set);
        assert_eq!(m.len(), 6);
        assert_eq!(m.pos(2), Some(0));
        assert_eq!(m.pos(3), Some(1));
        assert_eq!(m.pos(10), Some(2));
        assert_eq!(m.pos(12), Some(4));
        assert_eq!(m.pos(20), Some(5));
        for miss in [0, 1, 4, 9, 13, 19, 21] {
            assert_eq!(m.pos(miss), None, "element {miss} is not resident");
        }
        // The dense fast path kicks in for one contiguous run.
        let dense = LocalMap::new(&IndexSet::from_range(5, 9));
        assert!(dense.dense.is_some());
        assert_eq!(dense.pos(7), Some(2));
        assert_eq!(dense.pos(9), None);
    }

    #[test]
    fn pack_and_unpack_copy_whole_runs() {
        let local = IndexSet::from_indices([0, 1, 2, 3, 8, 9]);
        let mut rs = RankStore {
            fields: vec![RankField::F64 {
                local: LocalMap::new(&local),
                data: vec![0.0, 1.0, 2.0, 3.0, 8.0, 9.0],
            }],
        };
        let f = FieldId(0);
        // A transfer set spanning parts of both runs of the footprint.
        let sets: FieldSets = vec![(f, IndexSet::from_indices([1, 2, 8, 9]))];
        let mut out = Vec::new();
        assert_eq!(rs.pack(&sets, &mut out), 4);
        assert_eq!(out, vec![1.0, 2.0, 8.0, 9.0]);

        let rest = rs.unpack(&sets, &[10.0, 20.0, 80.0, 90.0, 7.5]);
        assert_eq!(rest, &[7.5], "unpack consumes exactly the set elements");
        assert_eq!(rs.try_read_f64(f, 1), Some(10.0));
        assert_eq!(rs.try_read_f64(f, 2), Some(20.0));
        assert_eq!(rs.try_read_f64(f, 8), Some(80.0));
        assert_eq!(rs.try_read_f64(f, 9), Some(90.0));
        assert_eq!(rs.try_read_f64(f, 0), Some(0.0), "untouched elements survive");
    }
}
