//! SPMD rank-sharded distributed backend.
//!
//! Each rank owns the subregions assigned to it by the solved disjoint
//! partitions (a block owner mapping of colors → ranks), holds only its
//! shard of every f64 region plus ghost cells, and exchanges data over
//! in-process channels — one mailbox pair per rank. Every send/recv set is
//! derived from the constraint solution by
//! [`partir_core::exchange::derive_exchange`] once per plan; execution
//! just moves the payloads.
//!
//! Results are bit-identical to the sequential interpreter (and the
//! threaded executor): ghost copies carry owner-fresh loop-start values so
//! in-place floating-point effects happen in the exact local order, owners
//! install written-back values verbatim (each element has exactly one
//! in-place writer, by disjointness), and partial reduction buffers merge
//! in ascending global color order with the same presence/skip semantics
//! as the threaded merge.

pub mod fault;
mod mailbox;
mod rank;
mod store;

pub use fault::{CheckpointPolicy, DistFaultPlan, RankCrash};
pub use store::RankStore;

use crate::dist::mailbox::build_fabric;
use crate::dist::rank::{OwnedShards, RankStats};
use parking_lot::Mutex;
use partir_core::exchange::{
    derive_exchange_with, prove_plan_legality, ExchangeError, ExchangePlan, PlanLegalityError,
};
use partir_core::pipeline::{ParallelPlan, PlannedReduce};
use partir_core::placement::{evacuate_placement, place, PlacementConfig, PlacementReport};
use partir_dpl::func::FnTable;
use partir_dpl::index_set::Idx;
use partir_dpl::partition::Partition;
use partir_dpl::region::{RegionId, Schema, Store};
use partir_ir::ast::{AccessId, Loop};
use partir_obs::json::Json;
use partir_obs::trace::{RankTracer, SpanKind, Trace};
use std::borrow::Cow;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Epoch deadline armed on every mailbox when the fault plan can crash a
/// rank: a receive that makes no progress for this long declares the first
/// still-awaited source lost. Only silent crashes need it (loud crashes
/// broadcast notices), but it is a harmless backstop either way — epochs
/// complete in microseconds-to-milliseconds, so a healthy peer never
/// comes close.
const EPOCH_DEADLINE: Duration = Duration::from_secs(2);

/// How access legality (`accessed ⊆ owned ∪ ghosts`) is established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LegalityMode {
    /// Prove containment once per plan by interval set-containment over
    /// the exchange plan's footprints ([`prove_plan_legality`]) — zero
    /// per-element work on the hot path. The release-mode default.
    Plan,
    /// Check every access against its partition subregion at runtime, on
    /// top of the plan proof — the debug-mode default, and the negative
    /// test's way of catching a corrupted plan element-by-element.
    Element,
    /// No legality work at all (residency faults still surface as
    /// [`DistError::Legality`] via the store's `owned ∪ ghosts` lookup).
    Off,
}

impl Default for LegalityMode {
    fn default() -> Self {
        if cfg!(debug_assertions) {
            LegalityMode::Element
        } else {
            LegalityMode::Plan
        }
    }
}

/// Distributed executor configuration.
#[derive(Clone, Debug)]
pub struct DistOptions {
    /// Number of ranks (SPMD processes, modeled as threads with disjoint
    /// sharded stores).
    pub n_ranks: usize,
    /// How access legality is established (see [`LegalityMode`]).
    pub legality: LegalityMode,
    /// When set, mailboxes shuffle delivery order among ready messages and
    /// inject tiny receive-side delays, deterministically per seed —
    /// simulates an adversarially slow fabric so tests can pin that
    /// results stay bit-identical under any arrival schedule.
    pub chaos_seed: Option<u64>,
    /// Record a per-rank timeline span for every epoch phase (pack, send,
    /// recv-wait, unpack, interior/halo compute, merge), returned as
    /// [`DistOutcome::trace`] for Chrome-trace export and critical-path
    /// analysis. Off by default; when off the per-peer span clocks are
    /// never read.
    pub collect_timeline: bool,
    /// Fail the run with [`DistError::VolumeMismatch`] when the bytes any
    /// rank pair actually moved disagree with what the exchange plan
    /// predicts. A mismatch means the runtime and the constraint solution
    /// disagree about the communication footprint — a correctness smell,
    /// not a perf one.
    pub strict_volume: bool,
    /// Deterministic fabric/rank fault injection (message drops,
    /// duplication, whole-rank crash). Configuring a plan also enables
    /// survivor-side recovery: a lost rank's colors are evacuated to the
    /// survivors, state restores from the last consistent checkpoint (or
    /// the pristine input), and the run resumes bit-identical to the
    /// sequential interpreter.
    pub fault: Option<DistFaultPlan>,
    /// Epoch-interval checkpointing of each rank's owned shard, the
    /// restore points recovery rolls back to. Without a policy, recovery
    /// restarts from epoch 0.
    pub checkpoint: Option<CheckpointPolicy>,
    /// How solved colors map onto ranks: naive blocking (the default),
    /// cost-driven graph partitioning over the exchange plan's predicted
    /// pair volumes, or an explicit caller-supplied assignment. Also
    /// drives placement-aware crash recovery (the dead rank's colors are
    /// re-placed by communication gain instead of round-robin).
    pub placement: PlacementConfig,
    /// Plan-legality facts already proved for *this* exchange plan and
    /// partition set (e.g. by `partir-core`'s plan cache, which bundles
    /// the proof with the cached artifacts). When set and legality is not
    /// `Off`, the up-front `prove_plan_legality` pass is skipped and the
    /// count is reported as `plan_proved` unchanged. Callers own the
    /// invariant that the proof matches the plan they pass; recovery
    /// re-proves from scratch regardless, since evacuation rewrites the
    /// exchange plan.
    pub preproved: Option<u64>,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            n_ranks: 4,
            legality: LegalityMode::default(),
            chaos_seed: None,
            collect_timeline: false,
            strict_volume: false,
            fault: None,
            checkpoint: None,
            placement: PlacementConfig::default(),
            preproved: None,
        }
    }
}

/// In-memory per-rank checkpoint store: snapshots of each rank's owned
/// shard, keyed by the epoch after which they were taken. Held by the
/// driver; ranks push into it at checkpoint boundaries, recovery restores
/// the newest epoch *every* spawned rank holds (the only globally
/// consistent cut — a laggard may not have reached the latest boundary
/// when its peer died).
pub(crate) struct CheckpointStore {
    slots: Mutex<Vec<Vec<(u64, OwnedShards)>>>,
}

impl CheckpointStore {
    fn new(n_ranks: usize) -> Self {
        CheckpointStore { slots: Mutex::new(vec![Vec::new(); n_ranks]) }
    }

    pub(crate) fn put(&self, rank: usize, epoch: u64, shards: OwnedShards) {
        self.slots.lock()[rank].push((epoch, shards));
    }

    /// The newest epoch for which every `spawned` rank holds a snapshot.
    fn consistent_epoch(&self, spawned: &[bool]) -> Option<u64> {
        let slots = self.slots.lock();
        let first = spawned.iter().position(|&a| a)?;
        let mut epochs: Vec<u64> = slots[first].iter().map(|&(e, _)| e).collect();
        epochs.sort_unstable_by(|a, b| b.cmp(a));
        epochs.into_iter().find(|&e| {
            spawned.iter().enumerate().all(|(r, &a)| !a || slots[r].iter().any(|(ee, _)| *ee == e))
        })
    }

    /// Installs every rank's `epoch` snapshot into `store` under the
    /// exchange plan the snapshots were taken with.
    fn restore_into(&self, store: &mut Store, xplan: &ExchangePlan, epoch: u64) {
        let slots = self.slots.lock();
        for (r, list) in slots.iter().enumerate() {
            if let Some((_, shards)) = list.iter().find(|(e, _)| *e == epoch) {
                RankStore::install_owned(store, xplan, r, shards.clone());
            }
        }
    }

    /// Drops all snapshots — they were taken under an owner assignment
    /// that no longer exists once recovery re-shards.
    fn clear(&self) {
        for l in self.slots.lock().iter_mut() {
            l.clear();
        }
    }
}

/// Distributed execution statistics: compute, communication volume, and
/// per-phase timings summed over ranks.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistReport {
    pub ranks: u64,
    pub tasks_run: u64,
    /// Coalesced messages actually sent (ghost + post).
    pub messages: u64,
    /// Payload bytes actually sent between ranks.
    pub bytes_sent: u64,
    /// Ghost elements resident across ranks (from the exchange plan).
    pub ghost_elements: u64,
    pub ghost_fetch_bytes: u64,
    pub write_back_bytes: u64,
    pub partial_bytes: u64,
    /// Bytes full replication would have moved — the baseline sharding
    /// beats (from the exchange plan).
    pub replication_bytes: u64,
    pub legality_checks: u64,
    /// Containment facts established by the plan-level legality proof
    /// (one per `(loop, access, color)`), 0 when the proof did not run.
    pub plan_proved: u64,
    pub buffer_bytes: u64,
    pub guard_hits: u64,
    pub guard_skips: u64,
    pub write_skips: u64,
    /// Summed per-rank phase timings (nanoseconds).
    pub pack_ns: u64,
    pub exchange_wait_ns: u64,
    pub unpack_ns: u64,
    pub compute_ns: u64,
    pub merge_ns: u64,
    /// Rank losses recovered from (each one re-sharded and resumed).
    pub recoveries: u64,
    /// Bytes of owned state the survivors adopted from lost ranks —
    /// recovery's minimality claim is `bytes_migrated ≤` the lost ranks'
    /// owned-shard size (nothing already owned by a survivor ever moves).
    pub bytes_migrated: u64,
    /// Driver time spent re-sharding + restoring checkpoints.
    pub recovery_ns: u64,
    /// Owned-shard checkpoints taken (final attempt), and their cost.
    pub checkpoints: u64,
    pub checkpoint_bytes: u64,
    pub checkpoint_ns: u64,
    /// Send attempts the fault plan dropped in flight (sender retried).
    pub retransmits: u64,
    /// Duplicate copies the fault plan injected (receivers deduped them).
    pub duplicates: u64,
}

impl DistReport {
    /// Machine-readable form, for the JSON report envelopes.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("ranks", self.ranks)
            .with("tasks_run", self.tasks_run)
            .with("messages", self.messages)
            .with("bytes_sent", self.bytes_sent)
            .with("ghost_elements", self.ghost_elements)
            .with("ghost_fetch_bytes", self.ghost_fetch_bytes)
            .with("write_back_bytes", self.write_back_bytes)
            .with("partial_bytes", self.partial_bytes)
            .with("replication_bytes", self.replication_bytes)
            .with("legality_checks", self.legality_checks)
            .with("plan_proved", self.plan_proved)
            .with("buffer_bytes", self.buffer_bytes)
            .with("guard_hits", self.guard_hits)
            .with("guard_skips", self.guard_skips)
            .with("write_skips", self.write_skips)
            .with("pack_ns", self.pack_ns)
            .with("exchange_wait_ns", self.exchange_wait_ns)
            .with("unpack_ns", self.unpack_ns)
            .with("compute_ns", self.compute_ns)
            .with("merge_ns", self.merge_ns)
            .with("recoveries", self.recoveries)
            .with("bytes_migrated", self.bytes_migrated)
            .with("recovery_ns", self.recovery_ns)
            .with("checkpoints", self.checkpoints)
            .with("checkpoint_bytes", self.checkpoint_bytes)
            .with("checkpoint_ns", self.checkpoint_ns)
            .with("retransmits", self.retransmits)
            .with("duplicates", self.duplicates)
    }
}

/// Predicted vs measured traffic of one `(src, dst)` rank pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairDelta {
    pub src: usize,
    pub dst: usize,
    pub predicted_bytes: u64,
    pub measured_bytes: u64,
    pub predicted_messages: u64,
    pub measured_messages: u64,
}

impl PairDelta {
    /// Did the runtime move exactly what the plan predicted?
    pub fn is_clean(&self) -> bool {
        self.predicted_bytes == self.measured_bytes
            && self.predicted_messages == self.measured_messages
    }

    pub fn to_json(&self) -> Json {
        Json::object()
            .with("src", self.src)
            .with("dst", self.dst)
            .with("predicted_bytes", self.predicted_bytes)
            .with("measured_bytes", self.measured_bytes)
            .with("delta_bytes", self.measured_bytes as i64 - self.predicted_bytes as i64)
            .with("predicted_messages", self.predicted_messages)
            .with("measured_messages", self.measured_messages)
    }
}

/// Per-pair predicted-vs-measured communication accounting of one run:
/// predictions are computed statically from the exchange plan
/// ([`ExchangePlan::predicted_pair_volume`]), measurements at the mailbox
/// layer as messages arrive.
#[derive(Clone, Debug, Default)]
pub struct VolumeAccounting {
    /// Every pair with any predicted or measured traffic, ascending
    /// `(src, dst)`.
    pub pairs: Vec<PairDelta>,
}

impl VolumeAccounting {
    /// No pair deviated from its prediction.
    pub fn is_clean(&self) -> bool {
        self.pairs.iter().all(PairDelta::is_clean)
    }

    /// The first deviating pair, if any.
    pub fn first_mismatch(&self) -> Option<&PairDelta> {
        self.pairs.iter().find(|p| !p.is_clean())
    }

    /// The `pairs` report section: one object per traffic-bearing pair.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.pairs.iter().map(PairDelta::to_json).collect())
    }
}

/// Full result of a distributed run: the aggregate report plus the
/// cross-rank timeline (when collected) and the predicted-vs-measured
/// volume accounting.
#[derive(Debug)]
pub struct DistOutcome {
    pub report: DistReport,
    /// Per-rank timelines, present when [`DistOptions::collect_timeline`]
    /// was on.
    pub trace: Option<Trace>,
    pub volume: VolumeAccounting,
    /// Time spent in up-front plan validation (the explicit legality
    /// pass), nanoseconds.
    pub validate_ns: u64,
    /// Ranks declared lost and recovered from, in loss order.
    pub lost_ranks: Vec<usize>,
    /// How the owner mapping was chosen, with block-vs-optimized predicted
    /// bytes and refinement accounting. Present when this call derived the
    /// exchange plan itself (absent under `execute_with_exchange_full`,
    /// where the caller owns the plan).
    pub placement: Option<PlacementReport>,
}

/// A distributed legality failure: which access of which loop, run by which
/// task on which rank, touched which element outside its subregion or
/// outside the rank's `owned ∪ ghosts` footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistViolation {
    pub rank: usize,
    /// Loop index in execution order.
    pub loop_id: usize,
    /// The task (color) whose access escaped.
    pub task: usize,
    pub region: RegionId,
    pub index: Idx,
    pub access: AccessId,
}

impl fmt::Display for DistViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} loop {} task {}: access {:?} touched element {} of region r{} outside its subregion or rank footprint",
            self.rank, self.loop_id, self.task, self.access, self.index, self.region.0
        )
    }
}

/// Distributed execution failure.
#[derive(Debug)]
pub enum DistError {
    /// Communication-set derivation failed.
    Exchange(ExchangeError),
    /// The plan does not describe this program (loop counts differ).
    PlanMismatch { plan_loops: usize, program_loops: usize },
    /// A plan references a partition index outside the evaluated set.
    PartitionIndexOutOfBounds { loop_index: usize, part: usize, len: usize },
    /// Partitions disagree on the launch width (subregion counts differ).
    PartitionWidthMismatch { part: usize, expected: usize, got: usize },
    /// A partition contains element indices outside its region.
    PartitionExceedsRegion { loop_index: usize, part: usize, index: Idx, size: u64 },
    /// The iteration partition misses elements of the iteration space.
    IncompleteIteration { loop_index: usize },
    /// A loop with centered reductions got an aliased iteration partition.
    IterationNotDisjoint { loop_index: usize },
    /// A direct/guarded reduction partition is not disjoint.
    ReductionNotDisjoint { loop_index: usize, access: AccessId },
    /// An access escaped its subregion or its rank's footprint.
    Legality(DistViolation),
    /// The plan-level legality proof failed: some `(loop, access, color)`
    /// can reach an element outside its rank's `owned ∪ ghosts` footprint.
    PlanIllegal(PlanLegalityError),
    /// A rank thread panicked (a genuine bug, not a legality report).
    RankPanic { rank: usize, message: String },
    /// A peer's mailbox hung up mid-run.
    Disconnected { rank: usize },
    /// A rank was declared lost at `epoch` — it crashed (detected by a
    /// crash notice or an epoch-deadline expiry) or stopped acknowledging
    /// sends past the retransmit bound. With recovery enabled the driver
    /// handles this internally; it surfaces only when recovery is off or
    /// no survivors remain.
    RankLost { rank: usize, epoch: u64 },
    /// This rank stopped because another rank failed first (the first
    /// failure carries the real error).
    Aborted,
    /// Strict volume accounting found a rank pair whose measured traffic
    /// disagrees with the exchange plan's prediction.
    VolumeMismatch { src: usize, dst: usize, predicted_bytes: u64, measured_bytes: u64 },
    /// Executor bookkeeping failure.
    Internal(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Exchange(e) => write!(f, "exchange derivation failed: {e}"),
            DistError::PlanMismatch { plan_loops, program_loops } => {
                write!(f, "plan describes {plan_loops} loops but the program has {program_loops}")
            }
            DistError::PartitionIndexOutOfBounds { loop_index, part, len } => {
                write!(
                    f,
                    "loop {loop_index}: partition index {part} out of bounds ({len} evaluated)"
                )
            }
            DistError::PartitionWidthMismatch { part, expected, got } => {
                write!(f, "partition {part} has {got} subregions, launch width is {expected}")
            }
            DistError::PartitionExceedsRegion { loop_index, part, index, size } => {
                write!(
                    f,
                    "loop {loop_index}: partition {part} contains element {index} outside its region (size {size})"
                )
            }
            DistError::IncompleteIteration { loop_index } => {
                write!(f, "loop {loop_index}: iteration partition incomplete")
            }
            DistError::IterationNotDisjoint { loop_index } => {
                write!(
                    f,
                    "loop {loop_index}: centered reductions need a disjoint iteration partition"
                )
            }
            DistError::ReductionNotDisjoint { loop_index, access } => {
                write!(f, "loop {loop_index}: reduction partition for {access:?} not disjoint")
            }
            DistError::Legality(v) => write!(f, "distributed legality violation: {v}"),
            DistError::PlanIllegal(e) => write!(f, "plan-level legality proof failed: {e}"),
            DistError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            DistError::Disconnected { rank } => {
                write!(f, "rank {rank} hung up mid-run")
            }
            DistError::RankLost { rank, epoch } => {
                write!(f, "rank {rank} lost at epoch {epoch}")
            }
            DistError::Aborted => write!(f, "aborted after another rank's failure"),
            DistError::VolumeMismatch { src, dst, predicted_bytes, measured_bytes } => {
                write!(
                    f,
                    "rank pair ({src} -> {dst}): plan predicts {predicted_bytes} bytes but the runtime moved {measured_bytes}"
                )
            }
            DistError::Internal(m) => write!(f, "internal distributed-executor error: {m}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<ExchangeError> for DistError {
    fn from(e: ExchangeError) -> Self {
        DistError::Exchange(e)
    }
}

/// Executes every loop of `program` in SPMD fashion over
/// [`DistOptions::n_ranks`] ranks and gathers the owned shards back into
/// `store`. Results are bit-identical to the sequential interpreter.
///
/// `parts` must be `plan.evaluate(...)` output, exactly as for the
/// threaded executor.
pub fn execute_dist(
    program: &[Loop],
    plan: &ParallelPlan,
    parts: &[Arc<Partition>],
    store: &mut Store,
    fns: &FnTable,
    opts: &DistOptions,
) -> Result<DistReport, DistError> {
    execute_dist_full(program, plan, parts, store, fns, opts).map(|o| o.report)
}

/// [`execute_dist`] returning the full [`DistOutcome`]: the report plus
/// the cross-rank timeline and the volume accounting.
pub fn execute_dist_full(
    program: &[Loop],
    plan: &ParallelPlan,
    parts: &[Arc<Partition>],
    store: &mut Store,
    fns: &FnTable,
    opts: &DistOptions,
) -> Result<DistOutcome, DistError> {
    validate(program, plan, parts, store.schema(), opts)?;
    let placed = place(plan, parts, store.schema(), opts.n_ranks, &opts.placement)?;
    let mut outcome =
        execute_with_exchange_full(program, plan, parts, &placed.xplan, store, fns, opts)?;
    outcome.placement = Some(placed.report);
    Ok(outcome)
}

/// [`execute_dist`] with a precomputed exchange plan (the plan depends only
/// on the partitions and rank count, so repeated executions reuse it).
pub fn execute_with_exchange(
    program: &[Loop],
    plan: &ParallelPlan,
    parts: &[Arc<Partition>],
    xplan: &ExchangePlan,
    store: &mut Store,
    fns: &FnTable,
    opts: &DistOptions,
) -> Result<DistReport, DistError> {
    execute_with_exchange_full(program, plan, parts, xplan, store, fns, opts).map(|o| o.report)
}

/// [`execute_dist_full`] with a precomputed exchange plan.
pub fn execute_with_exchange_full(
    program: &[Loop],
    plan: &ParallelPlan,
    parts: &[Arc<Partition>],
    xplan: &ExchangePlan,
    store: &mut Store,
    fns: &FnTable,
    opts: &DistOptions,
) -> Result<DistOutcome, DistError> {
    let vt = Instant::now();
    {
        let vspan = partir_obs::span("dist.validate");
        validate(program, plan, parts, store.schema(), opts)?;
        drop(vspan);
    }
    let validate_ns = vt.elapsed().as_nanos() as u64;
    // Plan-level legality: prove `accessed ⊆ owned ∪ ghosts` once, by
    // interval set-containment, instead of re-deriving it per element on
    // the hot path. Element mode proves too — the per-element checks then
    // double as the negative test's corruption detector.
    let mut plan_proved = if opts.legality != LegalityMode::Off {
        match opts.preproved {
            // A cached proof for this exact (xplan, parts) pair: skip the
            // containment pass, keep the fact count in the report.
            Some(facts) => facts,
            None => {
                let proof = prove_plan_legality(xplan, plan, parts, store.schema())
                    .map_err(DistError::PlanIllegal)?;
                proof.facts
            }
        }
    } else {
        0
    };
    let n_ranks = xplan.n_ranks;
    let span = partir_obs::span_with(
        "dist.execute",
        vec![("ranks", n_ranks.into()), ("loops", program.len().into())],
    );
    let schema = store.schema().clone();

    // Fault plane. A configured fault plan (or checkpoint policy) enables
    // survivor-side recovery, which needs the pristine input state as the
    // epoch-0 restore point.
    let fault = opts.fault;
    let policy = opts.checkpoint;
    let recovery_enabled = fault.is_some() || policy.is_some();
    let initial: Option<Store> = recovery_enabled.then(|| store.clone());
    let ckpts = CheckpointStore::new(n_ranks);

    let mut alive = vec![true; n_ranks];
    let mut cur_xplan: Cow<'_, ExchangePlan> = Cow::Borrowed(xplan);
    let mut first_epoch = 0usize;
    let mut restored: Option<Store> = None;
    let mut lost_ranks: Vec<usize> = Vec::new();
    let mut recoveries = 0u64;
    let mut bytes_migrated = 0u64;
    let mut recovery_ns = 0u64;
    // `(ns, bytes)` of the recovery that launched the current attempt, so
    // its survivors' timelines carry a Recovery span.
    let mut last_recovery: Option<(u64, u64)> = None;

    let outcomes = loop {
        let base_store: &Store = restored.as_ref().unwrap_or(store);
        let attempt = run_attempt(
            program,
            plan,
            parts,
            &cur_xplan,
            base_store,
            &schema,
            fns,
            opts,
            &alive,
            first_epoch,
            fault.as_ref(),
            policy.as_ref().map(|p| (p, &ckpts)),
            last_recovery,
        )?;
        if let Some(v) = attempt.violation {
            return Err(DistError::Legality(v));
        }
        // The crash slot is ground truth; a peer's RankLost (from a notice,
        // a deadline expiry, or retransmit exhaustion) is the fallback.
        let dead = attempt.lost.map(|(r, _)| r).or(match &attempt.error {
            Some(DistError::RankLost { rank, .. }) => Some(*rank),
            _ => None,
        });
        match (dead, attempt.error) {
            (Some(dead), err) if recovery_enabled && alive[dead] => {
                // Survivor-side recovery: evacuate the dead rank's colors,
                // re-derive + re-prove the exchange plan, restore the last
                // consistent checkpoint, resume on the survivors.
                let t = Instant::now();
                recoveries += 1;
                lost_ranks.push(dead);
                let spawned = alive.clone();
                alive[dead] = false;
                if !alive.iter().any(|&a| a) {
                    return Err(err.unwrap_or(DistError::RankLost { rank: dead, epoch: 0 }));
                }
                let assignment = evacuate_placement(
                    plan,
                    parts,
                    &schema,
                    cur_xplan.owner_assignment(),
                    dead,
                    n_ranks,
                    &opts.placement,
                )?;
                let nx = derive_exchange_with(plan, parts, &schema, n_ranks, &assignment)?;
                if opts.legality != LegalityMode::Off {
                    plan_proved = prove_plan_legality(&nx, plan, parts, &schema)
                        .map_err(DistError::PlanIllegal)?
                        .facts;
                }
                // Minimal migration: survivors keep every color they had,
                // so the only owned bytes that move are the dead rank's.
                let migrated: u64 = (0..n_ranks)
                    .filter(|&r| alive[r])
                    .map(|r| {
                        nx.owned_field_bytes(&schema, r)
                            .saturating_sub(cur_xplan.owned_field_bytes(&schema, r))
                    })
                    .sum();
                bytes_migrated += migrated;
                let mut base = initial.clone().expect("recovery implies a saved initial store");
                first_epoch = match ckpts.consistent_epoch(&spawned) {
                    Some(ce) => {
                        ckpts.restore_into(&mut base, &cur_xplan, ce);
                        (ce + 1) as usize
                    }
                    None => 0,
                };
                ckpts.clear();
                restored = Some(base);
                cur_xplan = Cow::Owned(nx);
                let d = t.elapsed().as_nanos() as u64;
                recovery_ns += d;
                last_recovery = Some((d, migrated));
                continue;
            }
            (_, Some(e)) => return Err(e),
            (Some(dead), None) => {
                // A crash was observed but recovery is impossible (e.g.
                // every peer finished before needing the dead rank and
                // recovery is disabled) — never silently return results
                // missing the dead rank's epochs.
                let epoch = attempt.lost.map(|(_, e)| e).unwrap_or(0);
                return Err(DistError::RankLost { rank: dead, epoch });
            }
            (None, None) => break attempt.outcomes,
        }
    };

    // Gather: install every surviving rank's owned shards into the
    // caller's store. Under the final (possibly evacuated) owner
    // assignment the survivors' shards cover every region completely.
    let xp: &ExchangePlan = &cur_xplan;
    let mut report = DistReport {
        ranks: n_ranks as u64,
        plan_proved,
        ghost_elements: xp.stats.ghost_elements,
        ghost_fetch_bytes: xp.stats.ghost_fetch_bytes,
        write_back_bytes: xp.stats.write_back_bytes,
        partial_bytes: xp.stats.partial_bytes,
        replication_bytes: xp.stats.replication_bytes,
        recoveries,
        bytes_migrated,
        recovery_ns,
        ..DistReport::default()
    };
    // measured[src][dst]: what dst's mailbox metered against src.
    let mut measured = vec![vec![(0u64, 0u64); n_ranks]; n_ranks];
    let mut done_tracers: Vec<RankTracer> = Vec::new();
    for (r, out) in outcomes.into_iter().enumerate() {
        let Some((owned, rstats, tracer)) = out else {
            if alive[r] {
                return Err(DistError::Internal(format!("rank {r} produced no result")));
            }
            continue;
        };
        RankStore::install_owned(store, xp, r, owned);
        report.tasks_run += rstats.tasks_run;
        report.messages += rstats.messages_sent;
        report.bytes_sent += rstats.bytes_sent;
        report.legality_checks += rstats.legality_checks;
        report.buffer_bytes += rstats.buffer_bytes;
        report.guard_hits += rstats.guard_hits;
        report.guard_skips += rstats.guard_skips;
        report.write_skips += rstats.write_skips;
        report.pack_ns += rstats.pack_ns;
        report.exchange_wait_ns += rstats.exchange_wait_ns;
        report.unpack_ns += rstats.unpack_ns;
        report.compute_ns += rstats.compute_ns;
        report.merge_ns += rstats.merge_ns;
        report.retransmits += rstats.retransmits;
        report.duplicates += rstats.duplicates_sent;
        report.checkpoints += rstats.checkpoints;
        report.checkpoint_bytes += rstats.checkpoint_bytes;
        report.checkpoint_ns += rstats.checkpoint_ns;
        for (src, &cell) in rstats.recv_by_src.iter().enumerate() {
            measured[src][r] = cell;
        }
        done_tracers.extend(tracer);
    }

    // Predicted-vs-measured accounting per (src, dst) pair. A recovered
    // run predicts only the epochs it actually re-executed; duplicate
    // deliveries and crash notices were metered separately by the
    // mailboxes and never pollute these pairs.
    let predicted = xp.predicted_pair_volume_from(first_epoch);
    let mut pairs = Vec::new();
    for src in 0..n_ranks {
        for dst in 0..n_ranks {
            let p = predicted[src][dst];
            let (m_bytes, m_msgs) = measured[src][dst];
            if p.bytes == 0 && p.messages == 0 && m_bytes == 0 && m_msgs == 0 {
                continue;
            }
            pairs.push(PairDelta {
                src,
                dst,
                predicted_bytes: p.bytes,
                measured_bytes: m_bytes,
                predicted_messages: p.messages,
                measured_messages: m_msgs,
            });
        }
    }
    let volume = VolumeAccounting { pairs };
    if opts.strict_volume {
        if let Some(d) = volume.first_mismatch() {
            return Err(DistError::VolumeMismatch {
                src: d.src,
                dst: d.dst,
                predicted_bytes: d.predicted_bytes,
                measured_bytes: d.measured_bytes,
            });
        }
    }
    let trace = opts.collect_timeline.then(|| {
        let mut t = Trace::from_rank_tracers(n_ranks, done_tracers);
        t.first_epoch = first_epoch;
        t.lost_ranks = lost_ranks.clone();
        t
    });

    partir_obs::counter("dist.tasks_run", report.tasks_run);
    partir_obs::counter("dist.messages", report.messages);
    partir_obs::counter("dist.bytes_sent", report.bytes_sent);
    partir_obs::counter("dist.ghost_elements", report.ghost_elements);
    partir_obs::counter("dist.legality_checks", report.legality_checks);
    if report.recoveries > 0 {
        partir_obs::counter("dist.recovery_count", report.recoveries);
        partir_obs::counter("dist.recovery_bytes_migrated", report.bytes_migrated);
    }
    if report.checkpoints > 0 {
        partir_obs::counter("dist.checkpoints", report.checkpoints);
        partir_obs::counter("dist.checkpoint_bytes", report.checkpoint_bytes);
    }
    partir_obs::flush_counters();
    span.close_with(vec![
        ("messages", report.messages.into()),
        ("bytes_sent", report.bytes_sent.into()),
    ]);
    Ok(DistOutcome { report, trace, volume, validate_ns, lost_ranks, placement: None })
}

/// One rank's gathered result: owned shards, stats, and its timeline.
type RankOutcome = (OwnedShards, RankStats, Option<RankTracer>);

/// Everything one SPMD attempt produced, success or not.
struct AttemptResult {
    /// Per-rank outcomes; `None` for ranks that were not spawned (already
    /// dead) or did not finish.
    outcomes: Vec<Option<RankOutcome>>,
    /// The first hard error any rank hit (secondary aborts excluded).
    error: Option<DistError>,
    violation: Option<DistViolation>,
    /// Injected-crash ground truth: `(rank, epoch)` of the victim.
    lost: Option<(usize, u64)>,
}

/// Runs one SPMD attempt over the currently-alive ranks, resuming at
/// `first_epoch`. Returns `Err` only for driver-level failures (a scope
/// panic); rank-level failures come back inside [`AttemptResult`] so the
/// caller can decide between recovery and propagation.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    program: &[Loop],
    plan: &ParallelPlan,
    parts: &[Arc<Partition>],
    xplan: &ExchangePlan,
    base_store: &Store,
    schema: &Schema,
    fns: &FnTable,
    opts: &DistOptions,
    alive: &[bool],
    first_epoch: usize,
    fault: Option<&DistFaultPlan>,
    ckpt: Option<(&CheckpointPolicy, &CheckpointStore)>,
    recovery: Option<(u64, u64)>,
) -> Result<AttemptResult, DistError> {
    let n_ranks = xplan.n_ranks;
    let abort = Arc::new(AtomicBool::new(false));
    let (senders, mut mailboxes) = build_fabric(n_ranks, &abort);
    if let Some(seed) = opts.chaos_seed {
        for (r, mb) in mailboxes.iter_mut().enumerate() {
            // Per-rank decorrelated streams from one user seed.
            mb.set_chaos(seed ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }
    if fault.is_some_and(|f| f.crash.is_some()) {
        for mb in mailboxes.iter_mut() {
            mb.set_deadline(EPOCH_DEADLINE);
        }
    }
    let shards: Vec<Option<RankStore>> =
        (0..n_ranks).map(|r| alive[r].then(|| RankStore::shard(base_store, xplan, r))).collect();

    // One shared time base, taken before any rank spawns, so spans of
    // different ranks land on the same clock. Survivors of a recovery
    // open their timeline with a Recovery span covering the re-shard +
    // restore the driver just performed on their behalf.
    let base = Instant::now();
    let tracers: Vec<Option<RankTracer>> = (0..n_ranks)
        .map(|r| {
            (opts.collect_timeline && alive[r]).then(|| {
                let mut tr = RankTracer::new(r, base);
                if let Some((ns, bytes)) = recovery {
                    tr.record(SpanKind::Recovery, first_epoch, base, ns, bytes, None);
                }
                tr
            })
        })
        .collect();

    let violation: Mutex<Option<DistViolation>> = Mutex::new(None);
    let first_error: Mutex<Option<DistError>> = Mutex::new(None);
    let lost: Mutex<Option<(usize, u64)>> = Mutex::new(None);
    let outcomes: Mutex<Vec<Option<RankOutcome>>> =
        Mutex::new((0..n_ranks).map(|_| None).collect());

    let check = opts.legality == LegalityMode::Element;
    let scope_result = crossbeam::scope(|s| {
        for (r, ((mut mailbox, rstore), tracer)) in
            mailboxes.into_iter().zip(shards).zip(tracers).enumerate()
        {
            let Some(rstore) = rstore else { continue };
            let senders = senders.clone();
            let abort = Arc::clone(&abort);
            let (violation, first_error, outcomes, lost) =
                (&violation, &first_error, &outcomes, &lost);
            s.spawn(move |_| {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    rank::rank_main(
                        r,
                        program,
                        plan,
                        parts,
                        xplan,
                        schema,
                        fns,
                        rstore,
                        &senders,
                        &mut mailbox,
                        check,
                        &abort,
                        violation,
                        tracer,
                        first_epoch,
                        fault,
                        ckpt,
                        lost,
                    )
                }));
                match result {
                    Ok(Ok(out)) => outcomes.lock()[r] = Some(out),
                    // A secondary failure; the first failure has the cause.
                    Ok(Err(DistError::Aborted)) => {}
                    Ok(Err(e)) => {
                        let mut slot = first_error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        drop(slot);
                        abort.store(true, Ordering::Relaxed);
                    }
                    Err(p) => {
                        // Legality panics already recorded their structured
                        // violation; anything else is a genuine bug.
                        if violation.lock().is_none() {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(DistError::RankPanic {
                                    rank: r,
                                    message: panic_message(p),
                                });
                            }
                        }
                        abort.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    if let Err(p) = scope_result {
        return Err(DistError::Internal(panic_message(p)));
    }
    Ok(AttemptResult {
        outcomes: outcomes.into_inner(),
        error: first_error.into_inner(),
        violation: violation.into_inner(),
        lost: lost.into_inner(),
    })
}

/// Up-front validation: the same plan/partition invariants the threaded
/// executor enforces, as typed errors before any rank spawns.
fn validate(
    program: &[Loop],
    plan: &ParallelPlan,
    parts: &[Arc<Partition>],
    schema: &Schema,
    opts: &DistOptions,
) -> Result<(), DistError> {
    if plan.loops.len() != program.len() {
        return Err(DistError::PlanMismatch {
            plan_loops: plan.loops.len(),
            program_loops: program.len(),
        });
    }
    let width = parts.first().map(|p| p.num_subregions()).unwrap_or(0);
    for (pi, p) in parts.iter().enumerate() {
        if p.num_subregions() != width {
            return Err(DistError::PartitionWidthMismatch {
                part: pi,
                expected: width,
                got: p.num_subregions(),
            });
        }
    }
    let check_part = |li: usize, part: usize| -> Result<(), DistError> {
        if part >= parts.len() {
            return Err(DistError::PartitionIndexOutOfBounds {
                loop_index: li,
                part,
                len: parts.len(),
            });
        }
        Ok(())
    };
    let check_bounds = |li: usize, part: usize, region: RegionId| -> Result<(), DistError> {
        if opts.legality == LegalityMode::Off {
            return Ok(());
        }
        let size = schema.region_size(region);
        for sub in parts[part].subregions() {
            if let Some(m) = sub.max() {
                if m >= size {
                    return Err(DistError::PartitionExceedsRegion {
                        loop_index: li,
                        part,
                        index: m,
                        size,
                    });
                }
            }
        }
        Ok(())
    };
    for (li, lplan) in plan.loops.iter().enumerate() {
        check_part(li, lplan.iter.0 as usize)?;
        check_bounds(li, lplan.iter.0 as usize, program[li].region)?;
        let iter = &parts[lplan.iter.0 as usize];
        if !iter.is_complete(schema.region_size(program[li].region)) {
            return Err(DistError::IncompleteIteration { loop_index: li });
        }
        if lplan.iter_must_be_disjoint && !iter.is_disjoint() {
            return Err(DistError::IterationNotDisjoint { loop_index: li });
        }
        for (ai, ap) in lplan.accesses.iter().enumerate() {
            check_part(li, ap.part.0 as usize)?;
            check_bounds(li, ap.part.0 as usize, ap.region)?;
            match &ap.reduce {
                Some(PlannedReduce::Direct) | Some(PlannedReduce::Guarded)
                    if !parts[ap.part.0 as usize].is_disjoint() =>
                {
                    return Err(DistError::ReductionNotDisjoint {
                        loop_index: li,
                        access: AccessId(ai as u32),
                    });
                }
                Some(PlannedReduce::BufferedPrivate { private }) => {
                    check_part(li, private.0 as usize)?;
                    check_bounds(li, private.0 as usize, ap.region)?;
                    if !parts[private.0 as usize].is_disjoint() {
                        return Err(DistError::ReductionNotDisjoint {
                            loop_index: li,
                            access: AccessId(ai as u32),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_core::eval::ExtBindings;
    use partir_core::pipeline::{auto_parallelize, Hints, Options};
    use partir_dpl::func::{FnDef, FnTable, IndexFn};
    use partir_dpl::region::{FieldId, FieldKind, Schema};
    use partir_ir::ast::{LoopBuilder, ReduceOp, VExpr};
    use partir_ir::interp::run_program_seq;

    /// 1-D periodic stencil with a second reduction loop gathering row sums
    /// through a pointer field — exercises ghosts, write-backs, and
    /// two-step reductions at once.
    fn stencil_program(n: u64) -> (Vec<Loop>, FnTable, Schema, Store) {
        let mut schema = Schema::new();
        let r = schema.add_region("R", n);
        let fin = schema.add_field(r, "in", FieldKind::F64);
        let fout = schema.add_field(r, "out", FieldKind::F64);
        let mut fns = FnTable::new();
        let left =
            fns.add("left", r, r, FnDef::Index(IndexFn::AffineMod { mul: 1, add: -1, modulus: n }));
        let right =
            fns.add("right", r, r, FnDef::Index(IndexFn::AffineMod { mul: 1, add: 1, modulus: n }));
        let mut b = LoopBuilder::new("stencil", r);
        let i = b.loop_var();
        let li = b.idx_apply(left, i);
        let ri = b.idx_apply(right, i);
        let lv = b.val_read(r, fin, li);
        let rv = b.val_read(r, fin, ri);
        b.val_write(r, fout, i, VExpr::add(VExpr::var(lv), VExpr::var(rv)));
        let stencil = b.finish();

        let mut b2 = LoopBuilder::new("scatter", r);
        let i2 = b2.loop_var();
        let l2 = b2.idx_apply(left, i2);
        let v = b2.val_read(r, fout, i2);
        b2.val_reduce(r, fin, l2, ReduceOp::Add, VExpr::var(v));
        let scatter = b2.finish();

        let mut store = Store::new(schema.clone());
        for i in 0..n as usize {
            store.f64s_mut(fin)[i] = (i as f64).sin() * 3.25 + 0.125;
        }
        (vec![stencil, scatter], fns, schema, store)
    }

    #[test]
    fn dist_matches_sequential_bit_for_bit() {
        for ranks in [1usize, 2, 3, 4, 8] {
            let n = 48u64;
            let (program, fns, schema, seed) = stencil_program(n);
            let mut seq = seed.clone();
            run_program_seq(&program, &mut seq, &fns);

            let plan = auto_parallelize(&program, &fns, &schema, &Hints::new(), Options::default())
                .unwrap();
            let mut dist = seed.clone();
            let parts = plan.evaluate(&dist, &fns, ranks.max(2), &ExtBindings::new());
            let opts = DistOptions { n_ranks: ranks, ..DistOptions::default() };
            let report = execute_dist(&program, &plan, &parts, &mut dist, &fns, &opts).unwrap();
            assert_eq!(report.ranks, ranks as u64);
            for fi in 0..schema.num_fields() {
                let f = FieldId(fi as u32);
                assert_eq!(
                    seq.field_data(f),
                    dist.field_data(f),
                    "field {f:?} differs at {ranks} ranks"
                );
            }
        }
    }

    #[test]
    fn ghost_bytes_beat_replication() {
        let (program, fns, schema, seed) = stencil_program(64);
        let plan =
            auto_parallelize(&program, &fns, &schema, &Hints::new(), Options::default()).unwrap();
        let mut store = seed.clone();
        let parts = plan.evaluate(&store, &fns, 4, &ExtBindings::new());
        let opts = DistOptions { n_ranks: 4, ..DistOptions::default() };
        let report = execute_dist(&program, &plan, &parts, &mut store, &fns, &opts).unwrap();
        assert!(report.bytes_sent > 0);
        assert!(
            report.bytes_sent < report.replication_bytes,
            "ghost exchange ({}) must move less than replication ({})",
            report.bytes_sent,
            report.replication_bytes
        );
    }

    #[test]
    fn full_outcome_has_clean_volume_and_valid_timeline() {
        let (program, fns, schema, seed) = stencil_program(64);
        let plan =
            auto_parallelize(&program, &fns, &schema, &Hints::new(), Options::default()).unwrap();
        let mut store = seed.clone();
        let parts = plan.evaluate(&store, &fns, 4, &ExtBindings::new());
        let opts = DistOptions {
            n_ranks: 4,
            collect_timeline: true,
            strict_volume: true,
            ..DistOptions::default()
        };
        let outcome = execute_dist_full(&program, &plan, &parts, &mut store, &fns, &opts).unwrap();
        // Strict mode passed, so every pair is clean — and there is real
        // traffic to account for.
        assert!(!outcome.volume.pairs.is_empty());
        assert!(outcome.volume.is_clean());
        let measured: u64 = outcome.volume.pairs.iter().map(|p| p.measured_bytes).sum();
        assert_eq!(measured, outcome.report.bytes_sent, "mailbox meter matches sender stats");

        let trace = outcome.trace.expect("timeline was requested");
        trace.validate().expect("well-formed cross-rank timeline");
        assert_eq!(trace.n_epochs(), program.len(), "one epoch per loop");
        // Every rank recorded communication spans with byte payloads.
        for rank in 0..4 {
            assert!(trace.rank_spans(rank).any(|s| s.bytes > 0 && s.peer.is_some()));
        }
        // The profile attributes the whole wall-clock by construction.
        let prof = partir_obs::profile::DistProfile::from_trace(&trace);
        assert_eq!(prof.epochs.len(), program.len());
        assert!((prof.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_off_run_has_no_trace_but_still_accounts_volume() {
        let (program, fns, schema, seed) = stencil_program(48);
        let plan =
            auto_parallelize(&program, &fns, &schema, &Hints::new(), Options::default()).unwrap();
        let mut store = seed.clone();
        let parts = plan.evaluate(&store, &fns, 2, &ExtBindings::new());
        let opts = DistOptions { n_ranks: 2, ..DistOptions::default() };
        let outcome = execute_dist_full(&program, &plan, &parts, &mut store, &fns, &opts).unwrap();
        assert!(outcome.trace.is_none());
        assert!(outcome.volume.is_clean());
        assert!(!outcome.volume.pairs.is_empty());
    }
}
