//! In-process rank mailboxes.
//!
//! One mailbox pair per rank: a single receiver owned by the rank's thread
//! and one sender endpoint cloned into every peer. Messages are tagged with
//! the loop epoch so a fast rank may run ahead and push next-epoch ghosts
//! while a slow peer is still draining the current epoch — early messages
//! are stashed and replayed in order. Receives poll with a short timeout
//! against a shared abort flag so one failing rank cannot deadlock the
//! rest of the fleet.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a message carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Pre-loop ghost values: owner-fresh copies of `needed − owned`.
    Ghost,
    /// Post-loop traffic: in-place write-backs plus partial-reduction
    /// buffer slices, coalesced into one message per `(src, dst)` pair.
    Post,
    /// A crash notice: the sender is dying at the start of `epoch` and
    /// will produce no further traffic (the loud-crash detection path).
    Crash,
}

impl MsgKind {
    /// Stable numeric tag, used as a fault-plan hash coordinate.
    pub fn tag(self) -> u64 {
        match self {
            MsgKind::Ghost => 0,
            MsgKind::Post => 1,
            MsgKind::Crash => 2,
        }
    }
}

/// One coalesced inter-rank message. Both sides derive the exact layout of
/// `values` from the shared [`partir_core::exchange::ExchangePlan`], so
/// only raw f64 payloads travel — no per-message set descriptions.
#[derive(Clone, Debug)]
pub struct Msg {
    pub epoch: u64,
    pub src: usize,
    pub kind: MsgKind,
    /// Field payloads in plan order; for `Post`, write-back values first,
    /// then partial-buffer slices in (route-major, color-minor) order.
    pub values: Vec<f64>,
    /// For `Post`: one flag per routed (route, color) slice destined to the
    /// receiver — `false` means the color never contributed to that buffer
    /// and the receiver must skip its merge (mirroring the threaded
    /// executor, which skips unallocated buffers entirely).
    pub partials_present: Vec<bool>,
}

/// Receive failure.
#[derive(Debug)]
pub enum MailboxError {
    /// Another rank aborted the run (its error is reported separately).
    Aborted,
    /// A peer hung up without sending (it panicked before aborting).
    Disconnected,
    /// A crash notice arrived: `rank` announced it is dying and will send
    /// nothing further.
    Lost { rank: usize },
    /// The epoch deadline expired with messages still outstanding — the
    /// silent-crash detection path (the caller knows which sources it was
    /// still waiting on and names the suspect).
    Deadline,
}

/// Deterministic delivery-order shuffling for tests: a seeded xorshift*
/// stream that picks among equally-ready stashed messages and injects
/// tiny receive-side delays, simulating an adversarially slow fabric.
/// Results must stay bit-identical under any schedule it produces.
struct Chaos {
    state: u64,
}

impl Chaos {
    fn new(seed: u64) -> Self {
        Chaos { state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*: cheap, deterministic, good enough to shuffle.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The receiving half of one rank's mailbox. Meters arriving traffic per
/// source rank — the *measured* side of the predicted-vs-measured
/// communication accounting.
pub struct Mailbox {
    rx: Receiver<Msg>,
    pending: Vec<Msg>,
    abort: Arc<AtomicBool>,
    /// Per source rank: `(bytes, messages)` pulled off the channel —
    /// protocol traffic only. Duplicate deliveries and crash notices go
    /// to `aux_meter`, so this meter stays comparable to
    /// `ExchangePlan::predicted_pair_volume` even under fault injection.
    meter: Vec<(u64, u64)>,
    /// Per source rank: `(bytes, messages)` of traffic outside the plan's
    /// prediction — deduplicated duplicate deliveries and crash notices.
    aux_meter: Vec<(u64, u64)>,
    /// `(epoch, kind, src)` triples already delivered; the epoch protocol
    /// sends at most one message per triple, so a repeat is an injected
    /// (or fabric-level) duplicate and is dropped after metering.
    seen: HashSet<(u64, u64, usize)>,
    chaos: Option<Chaos>,
    /// Maximum time one `recv_any` call may wait before declaring the
    /// outstanding sources suspect (`MailboxError::Deadline`). `None`
    /// waits forever (the fault-free default — a stall is then a bug the
    /// abort flag surfaces, not a crash to recover from).
    deadline: Option<Duration>,
}

impl Mailbox {
    pub fn new(rx: Receiver<Msg>, abort: Arc<AtomicBool>, n_ranks: usize) -> Self {
        Mailbox {
            rx,
            pending: Vec::new(),
            abort,
            meter: vec![(0, 0); n_ranks],
            aux_meter: vec![(0, 0); n_ranks],
            seen: HashSet::new(),
            chaos: None,
            deadline: None,
        }
    }

    /// Enables deterministic delivery-order shuffling (see [`Chaos`]).
    pub fn set_chaos(&mut self, seed: u64) {
        self.chaos = Some(Chaos::new(seed));
    }

    /// Arms the epoch-deadline detector: a `recv_any` that waits longer
    /// than `d` returns [`MailboxError::Deadline`].
    pub fn set_deadline(&mut self, d: Duration) {
        self.deadline = Some(d);
    }

    /// Meters a message as it comes off the channel (stashed traffic is
    /// counted once, at arrival — not again on replay).
    fn note(&mut self, m: &Msg) {
        if let Some(cell) = self.meter.get_mut(m.src) {
            cell.0 += m.values.len() as u64 * 8;
            cell.1 += 1;
        }
    }

    /// Meters out-of-plan traffic (duplicates, crash notices).
    fn note_aux(&mut self, m: &Msg) {
        if let Some(cell) = self.aux_meter.get_mut(m.src) {
            cell.0 += m.values.len() as u64 * 8;
            cell.1 += 1;
        }
    }

    /// Measured `(bytes, messages)` received so far, indexed by source rank.
    pub fn measured(&self) -> &[(u64, u64)] {
        &self.meter
    }

    /// Measured out-of-plan `(bytes, messages)`: deduplicated duplicates
    /// plus crash notices, indexed by source rank.
    pub fn measured_aux(&self) -> &[(u64, u64)] {
        &self.aux_meter
    }

    /// Blocks until *some* message of `epoch` and `kind` from one of the
    /// `wanted` sources arrives, in arrival order — whichever peer's
    /// traffic lands first is installed first, so one slow peer never
    /// stalls the halos of the fast ones. The matched source is removed
    /// from `wanted`. Under chaos, ties among already-stashed matches are
    /// broken pseudo-randomly and small delays are injected.
    pub fn recv_any(
        &mut self,
        epoch: u64,
        kind: MsgKind,
        wanted: &mut Vec<usize>,
    ) -> Result<Msg, MailboxError> {
        let started = Instant::now();
        loop {
            let matches: Vec<usize> = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, m)| m.epoch == epoch && m.kind == kind && wanted.contains(&m.src))
                .map(|(i, _)| i)
                .collect();
            if !matches.is_empty() {
                let pick = match &mut self.chaos {
                    Some(c) => matches[c.next() as usize % matches.len()],
                    None => matches[0],
                };
                let m = self.pending.swap_remove(pick);
                wanted.retain(|&s| s != m.src);
                return Ok(m);
            }
            if self.abort.load(Ordering::Relaxed) {
                return Err(MailboxError::Aborted);
            }
            if self.deadline.is_some_and(|d| started.elapsed() >= d) {
                return Err(MailboxError::Deadline);
            }
            if let Some(c) = &mut self.chaos {
                let us = c.next() % 120;
                if us >= 40 {
                    std::thread::sleep(Duration::from_micros(us));
                }
            }
            match self.rx.recv_timeout(Duration::from_millis(10)) {
                Ok(m) => {
                    if m.kind == MsgKind::Crash {
                        self.note_aux(&m);
                        return Err(MailboxError::Lost { rank: m.src });
                    }
                    if self.seen.insert((m.epoch, m.kind.tag(), m.src)) {
                        self.note(&m);
                        self.pending.push(m);
                    } else {
                        self.note_aux(&m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return if self.abort.load(Ordering::Relaxed) {
                        Err(MailboxError::Aborted)
                    } else {
                        Err(MailboxError::Disconnected)
                    };
                }
            }
        }
    }

    /// Blocks until the message of `(epoch, kind, src)` arrives, stashing
    /// any other traffic that lands first.
    #[cfg(test)]
    pub fn recv_from(
        &mut self,
        epoch: u64,
        kind: MsgKind,
        src: usize,
    ) -> Result<Msg, MailboxError> {
        let mut wanted = vec![src];
        self.recv_any(epoch, kind, &mut wanted)
    }
}

/// Builds the full mailbox fabric: per-rank receivers plus a dense sender
/// matrix (`senders[dst]` delivers to rank `dst`).
pub fn build_fabric(n_ranks: usize, abort: &Arc<AtomicBool>) -> (Vec<Sender<Msg>>, Vec<Mailbox>) {
    let mut senders = Vec::with_capacity(n_ranks);
    let mut boxes = Vec::with_capacity(n_ranks);
    for _ in 0..n_ranks {
        let (tx, rx) = std::sync::mpsc::channel();
        senders.push(tx);
        boxes.push(Mailbox::new(rx, Arc::clone(abort), n_ranks));
    }
    (senders, boxes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_epochs_are_stashed_and_replayed() {
        let abort = Arc::new(AtomicBool::new(false));
        let (senders, mut boxes) = build_fabric(2, &abort);
        // Rank 1 runs ahead: epoch-1 ghost lands before epoch-0 post.
        senders[0]
            .send(Msg {
                epoch: 1,
                src: 1,
                kind: MsgKind::Ghost,
                values: vec![2.0],
                partials_present: vec![],
            })
            .unwrap();
        senders[0]
            .send(Msg {
                epoch: 0,
                src: 1,
                kind: MsgKind::Post,
                values: vec![1.0],
                partials_present: vec![],
            })
            .unwrap();
        let m0 = boxes[0].recv_from(0, MsgKind::Post, 1).unwrap();
        assert_eq!(m0.values, vec![1.0]);
        let m1 = boxes[0].recv_from(1, MsgKind::Ghost, 1).unwrap();
        assert_eq!(m1.values, vec![2.0]);
        // Both messages metered once, against src 1, stash included.
        assert_eq!(boxes[0].measured(), &[(0, 0), (16, 2)]);
    }

    #[test]
    fn recv_any_returns_arrival_order_and_drains_wanted() {
        let abort = Arc::new(AtomicBool::new(false));
        let (senders, mut boxes) = build_fabric(3, &abort);
        // Rank 2's ghost lands before rank 1's: arrival order wins over
        // rank order.
        for src in [2usize, 1] {
            senders[0]
                .send(Msg {
                    epoch: 0,
                    src,
                    kind: MsgKind::Ghost,
                    values: vec![src as f64],
                    partials_present: vec![],
                })
                .unwrap();
        }
        let mut wanted = vec![1usize, 2];
        let first = boxes[0].recv_any(0, MsgKind::Ghost, &mut wanted).unwrap();
        assert_eq!(first.src, 2, "first-arrived message is returned first");
        assert_eq!(wanted, vec![1]);
        let second = boxes[0].recv_any(0, MsgKind::Ghost, &mut wanted).unwrap();
        assert_eq!(second.src, 1);
        assert!(wanted.is_empty());
    }

    #[test]
    fn recv_any_under_chaos_still_delivers_everything() {
        let abort = Arc::new(AtomicBool::new(false));
        let (senders, mut boxes) = build_fabric(4, &abort);
        boxes[0].set_chaos(0xDEAD_BEEF);
        for src in [1usize, 2, 3] {
            senders[0]
                .send(Msg {
                    epoch: 0,
                    src,
                    kind: MsgKind::Ghost,
                    values: vec![src as f64],
                    partials_present: vec![],
                })
                .unwrap();
        }
        let mut wanted = vec![1usize, 2, 3];
        let mut got = Vec::new();
        while !wanted.is_empty() {
            got.push(boxes[0].recv_any(0, MsgKind::Ghost, &mut wanted).unwrap().src);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3], "chaos shuffles order, never loses messages");
    }

    #[test]
    fn abort_breaks_the_wait() {
        let abort = Arc::new(AtomicBool::new(false));
        let (_senders, mut boxes) = build_fabric(1, &abort);
        abort.store(true, Ordering::Relaxed);
        assert!(matches!(boxes[0].recv_from(0, MsgKind::Ghost, 0), Err(MailboxError::Aborted)));
    }

    #[test]
    fn duplicate_deliveries_are_dropped_and_metered_separately() {
        let abort = Arc::new(AtomicBool::new(false));
        let (senders, mut boxes) = build_fabric(2, &abort);
        for _ in 0..2 {
            senders[0]
                .send(Msg {
                    epoch: 0,
                    src: 1,
                    kind: MsgKind::Ghost,
                    values: vec![5.0],
                    partials_present: vec![],
                })
                .unwrap();
        }
        let m = boxes[0].recv_from(0, MsgKind::Ghost, 1).unwrap();
        assert_eq!(m.values, vec![5.0]);
        // Force the second copy off the channel: ask for a message that
        // never comes, with a short deadline to break the wait.
        boxes[0].set_deadline(Duration::from_millis(30));
        assert!(matches!(boxes[0].recv_from(1, MsgKind::Ghost, 1), Err(MailboxError::Deadline)));
        // Main meter saw the message once; the duplicate went to aux.
        assert_eq!(boxes[0].measured(), &[(0, 0), (8, 1)]);
        assert_eq!(boxes[0].measured_aux(), &[(0, 0), (8, 1)]);
    }

    #[test]
    fn crash_notice_surfaces_as_lost() {
        let abort = Arc::new(AtomicBool::new(false));
        let (senders, mut boxes) = build_fabric(2, &abort);
        senders[0]
            .send(Msg {
                epoch: 3,
                src: 1,
                kind: MsgKind::Crash,
                values: vec![],
                partials_present: vec![],
            })
            .unwrap();
        match boxes[0].recv_from(3, MsgKind::Ghost, 1) {
            Err(MailboxError::Lost { rank }) => assert_eq!(rank, 1),
            other => panic!("expected Lost, got {other:?}"),
        }
        // Crash notices never touch the protocol meter.
        assert_eq!(boxes[0].measured(), &[(0, 0), (0, 0)]);
        assert_eq!(boxes[0].measured_aux(), &[(0, 0), (0, 1)]);
    }

    #[test]
    fn deadline_expires_only_when_armed() {
        let abort = Arc::new(AtomicBool::new(false));
        let (_senders, mut boxes) = build_fabric(2, &abort);
        boxes[0].set_deadline(Duration::from_millis(25));
        let t0 = Instant::now();
        assert!(matches!(boxes[0].recv_from(0, MsgKind::Ghost, 1), Err(MailboxError::Deadline)));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }
}
