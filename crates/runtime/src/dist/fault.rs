//! Deterministic fault injection and checkpoint policy for the rank
//! backend — the distributed sibling of [`crate::fault::FaultPlan`].
//!
//! Where the threaded plan kills *task attempts*, this plan attacks the
//! *fabric and the ranks*: seeded message drops (forcing the bounded
//! retransmit path), seeded message duplication (forcing receiver-side
//! dedup), and a whole-rank crash at the top of a chosen epoch (forcing
//! detection, checkpoint restore, and survivor-side shard migration).
//! Every decision is a pure hash of the message's coordinates
//! `(seed, epoch, src, dst, kind, attempt)`, so a fault schedule replays
//! bit-identically from its seed regardless of thread interleaving.
//!
//! Checkpoint cadence comes from the same Young/Daly first-order optimum
//! the simulator prices (`sim::FailureModel`): the optimal interval is
//! `τ = sqrt(2 · C · MTBF)` for checkpoint cost `C`; translated into
//! whole epochs here since the rank backend checkpoints at epoch
//! boundaries (the only globally consistent cut the protocol has).

/// Whole-rank crash injection: the victim stops at the top of `epoch`,
/// before sending or computing anything for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankCrash {
    pub rank: usize,
    /// Epoch (loop index) at whose start the rank dies.
    pub epoch: u64,
    /// A silent crash sends no notice; peers detect it only when their
    /// epoch deadline expires. A loud crash (the default) broadcasts a
    /// crash notice, the fast detection path.
    pub silent: bool,
}

/// Deterministic, seedable description of fabric and rank faults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistFaultPlan {
    /// Seed for the per-message hash; the whole schedule derives from it.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given send *attempt* is dropped
    /// before delivery (the sender retransmits with seeded backoff).
    pub drop_rate: f64,
    /// Probability in `[0, 1]` that a delivered message is sent twice
    /// (the receiver must dedup; duplicate traffic is metered separately
    /// so strict volume accounting still balances).
    pub dup_rate: f64,
    /// Optional whole-rank crash.
    pub crash: Option<RankCrash>,
}

impl DistFaultPlan {
    /// A plan that injects nothing (useful as a base for struct update).
    pub fn quiescent(seed: u64) -> DistFaultPlan {
        DistFaultPlan { seed, drop_rate: 0.0, dup_rate: 0.0, crash: None }
    }

    /// Builds a plan from `PARTIR_DIST_FAULT_*` — parsed in exactly one
    /// place, [`partir_obs::config::dist_fault_env`] — for CI fault-matrix
    /// runs. Returns `None` when `PARTIR_DIST_FAULT_SEED` is unset. New
    /// code should pass a `DistFaultPlan` explicitly through the
    /// `partir::Partir` builder.
    pub fn from_env() -> Option<DistFaultPlan> {
        let env = partir_obs::config::dist_fault_env()?;
        Some(DistFaultPlan {
            seed: env.seed,
            drop_rate: env.drop_rate,
            dup_rate: env.dup_rate,
            crash: env.crash.map(|(rank, epoch, silent)| RankCrash { rank, epoch, silent }),
        })
    }

    /// Does this plan inject anything at all?
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0 || self.dup_rate > 0.0 || self.crash.is_some()
    }

    /// Should `rank` crash at the top of `epoch`?
    pub fn crashes(&self, rank: usize, epoch: u64) -> Option<RankCrash> {
        self.crash.filter(|c| c.rank == rank && c.epoch == epoch)
    }

    /// Is send attempt `attempt` of the `(epoch, src, dst, kind)` message
    /// dropped in flight?
    pub fn drops(&self, epoch: u64, src: usize, dst: usize, kind: u64, attempt: u32) -> bool {
        if self.drop_rate <= 0.0 {
            return false;
        }
        let h = hash4(self.seed, hash4(epoch, src as u64, dst as u64, kind), attempt as u64, 1);
        unit(h) < self.drop_rate
    }

    /// Is the delivered `(epoch, src, dst, kind)` message sent a second
    /// time?
    pub fn duplicates(&self, epoch: u64, src: usize, dst: usize, kind: u64) -> bool {
        if self.dup_rate <= 0.0 {
            return false;
        }
        let h = hash4(self.seed, hash4(epoch, src as u64, dst as u64, kind), 0, 2);
        unit(h) < self.dup_rate
    }

    /// Seeded retransmit backoff for attempt `attempt`, in microseconds:
    /// linear in the attempt number with a hashed jitter so retransmit
    /// storms from different ranks decorrelate deterministically.
    pub fn backoff_us(&self, epoch: u64, src: usize, dst: usize, attempt: u32) -> u64 {
        let jitter =
            hash4(self.seed, epoch, hash4(src as u64, dst as u64, 0, 3), attempt as u64) % 40;
        (attempt as u64) * 20 + jitter
    }
}

/// Retransmit bound: a message dropped this many times in a row makes the
/// sender declare the pair dead (`DistError::RankLost`). At drop rate
/// `p < 1` the chance of a spurious declaration is `p^24` — negligible
/// for any rate the chaos matrix uses.
pub const MAX_SEND_ATTEMPTS: u32 = 24;

/// When to snapshot each rank's owned shard, in whole epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// A checkpoint is taken after every `interval_epochs`-th epoch
    /// completes (and the store restore point advances with it).
    pub interval_epochs: u64,
}

impl CheckpointPolicy {
    /// Checkpoint after every `n` epochs (`n ≥ 1`).
    pub fn every(n: u64) -> CheckpointPolicy {
        CheckpointPolicy { interval_epochs: n.max(1) }
    }

    /// `PARTIR_DIST_CHECKPOINT_INTERVAL` default, parsed by
    /// [`partir_obs::config::dist_checkpoint_interval_env`].
    pub fn from_env() -> Option<CheckpointPolicy> {
        partir_obs::config::dist_checkpoint_interval_env().map(CheckpointPolicy::every)
    }

    /// The Young/Daly first-order optimum, `τ = sqrt(2 · C · MTBF)`,
    /// rounded to whole epochs of `epoch_cost_s` seconds each — the same
    /// formula the simulator's `FailureModel` prices. Degenerate inputs
    /// (zero epoch cost, zero MTBF) clamp to a 1-epoch interval.
    pub fn young_daly(epoch_cost_s: f64, checkpoint_cost_s: f64, mtbf_s: f64) -> CheckpointPolicy {
        let tau = (2.0 * checkpoint_cost_s * mtbf_s).sqrt();
        let epochs = if epoch_cost_s > 0.0 && tau.is_finite() {
            (tau / epoch_cost_s).round() as u64
        } else {
            1
        };
        CheckpointPolicy::every(epochs)
    }

    /// Is a checkpoint due after epoch `epoch` completes?
    pub fn due(&self, epoch: u64) -> bool {
        (epoch + 1).is_multiple_of(self.interval_epochs)
    }
}

/// 53 uniform bits → a unit float in `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// splitmix64-style finalizer: the standard 64-bit avalanche mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes four coordinates into one well-mixed word.
#[inline]
fn hash4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    mix(mix(mix(mix(a) ^ b) ^ c) ^ d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_plan_injects_nothing() {
        let plan = DistFaultPlan::quiescent(42);
        assert!(!plan.is_active());
        for e in 0..8u64 {
            for s in 0..4 {
                for d in 0..4 {
                    assert!(!plan.drops(e, s, d, 0, 0));
                    assert!(!plan.duplicates(e, s, d, 0));
                }
            }
        }
        assert_eq!(plan.crashes(0, 0), None);
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = DistFaultPlan { drop_rate: 0.5, dup_rate: 0.5, ..DistFaultPlan::quiescent(1) };
        let b = DistFaultPlan { seed: 2, ..a };
        let schedule =
            |p: &DistFaultPlan| (0..256u64).map(|e| p.drops(e, 0, 1, 0, 0)).collect::<Vec<_>>();
        assert_eq!(schedule(&a), schedule(&a), "pure function of coordinates");
        assert_ne!(schedule(&a), schedule(&b), "seed changes the schedule");
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let plan = DistFaultPlan { drop_rate: 0.25, ..DistFaultPlan::quiescent(99) };
        let fired = (0..4096u64).filter(|&e| plan.drops(e, 0, 1, 0, 0)).count();
        let frac = fired as f64 / 4096.0;
        assert!((frac - 0.25).abs() < 0.05, "observed drop rate {frac}");
    }

    #[test]
    fn crash_matches_only_its_coordinates() {
        let crash = RankCrash { rank: 2, epoch: 3, silent: false };
        let plan = DistFaultPlan { crash: Some(crash), ..DistFaultPlan::quiescent(7) };
        assert!(plan.is_active());
        assert_eq!(plan.crashes(2, 3), Some(crash));
        assert_eq!(plan.crashes(2, 4), None);
        assert_eq!(plan.crashes(1, 3), None);
    }

    #[test]
    fn backoff_grows_with_attempt_and_stays_bounded() {
        let plan = DistFaultPlan::quiescent(11);
        let b1 = plan.backoff_us(0, 0, 1, 1);
        let b8 = plan.backoff_us(0, 0, 1, 8);
        assert!(b1 < 20 + 40);
        assert!((160..160 + 40).contains(&b8), "linear base with bounded jitter: {b8}");
    }

    #[test]
    fn young_daly_interval_follows_the_formula() {
        // C = 2s, MTBF = 100s → τ = 20s; 4s epochs → 5-epoch interval.
        let p = CheckpointPolicy::young_daly(4.0, 2.0, 100.0);
        assert_eq!(p.interval_epochs, 5);
        assert!(p.due(4) && !p.due(3), "due after the 5th epoch completes");
        // Degenerate inputs clamp to every epoch.
        assert_eq!(CheckpointPolicy::young_daly(0.0, 2.0, 100.0).interval_epochs, 1);
        assert_eq!(CheckpointPolicy::young_daly(4.0, 0.0, 100.0).interval_epochs, 1);
    }
}
