//! Deterministic fault injection and recovery policy for the executor.
//!
//! Long-running distributed executions lose nodes; the paper's target
//! (Legion on a production cluster) treats task failure as routine. This
//! module gives the threaded executor the same discipline in a testable
//! form: a seeded *fault plan* decides — as a pure function of the task's
//! coordinates — which task attempts die and where in their iteration
//! subregion, so every failure schedule replays bit-identically from its
//! seed. Two failure flavours cover the interesting recovery paths:
//!
//! * a **clean kill** stops the task mid-loop after a deterministic number
//!   of iterations, leaving partial effects behind (the executor rolls
//!   them back from a pre-attempt snapshot);
//! * a **poison** additionally panics inside the task body, exercising the
//!   `catch_unwind` isolation barrier that keeps one poisoned worker from
//!   taking down the run.
//!
//! Recovery is layered: bounded per-task retries with linear backoff
//! first, then — if a task exhausts its retries — sequential re-execution
//! on the main thread through the same task context, which is exactly the
//! reference-interpreter semantics restricted to the failed subregion.
//! Results are therefore always bit-identical to the sequential ground
//! truth, merely slower; `ExecReport::degraded` records that the slow
//! path ran.

use std::time::Duration;

/// Deterministic, seedable description of which task attempts fail.
///
/// Decisions are pure functions of `(seed, loop, color, attempt)`, so they
/// do not depend on thread scheduling: replaying with the same plan yields
/// the same injected-fault schedule, the same retry counts, and the same
/// final stores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-attempt hash; the whole schedule derives from it.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given task *attempt* is killed.
    /// `1.0` kills every attempt (recovery then handles every task).
    pub task_failure_rate: f64,
    /// Cumulative task ordinal (loop-major, color-minor, independent of
    /// scheduling) at and after which injected failures poison the worker
    /// with a panic instead of dying cleanly. `None` means clean kills
    /// only.
    pub poison_after: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for struct update).
    pub fn quiescent(seed: u64) -> FaultPlan {
        FaultPlan { seed, task_failure_rate: 0.0, poison_after: None }
    }

    /// Builds a plan from `PARTIR_FAULT_SEED` / `PARTIR_FAULT_RATE` /
    /// `PARTIR_FAULT_POISON_AFTER` — parsed in exactly one place,
    /// [`partir_obs::config::fault_env`] — for CI fault-matrix runs.
    /// Returns `None` when `PARTIR_FAULT_SEED` is unset or unparsable; the
    /// rate defaults to `0.3` when only the seed is given. New code should
    /// pass a `FaultPlan` explicitly through the `partir::Partir` builder.
    pub fn from_env() -> Option<FaultPlan> {
        let env = partir_obs::config::fault_env()?;
        Some(FaultPlan {
            seed: env.seed,
            task_failure_rate: env.rate,
            poison_after: env.poison_after,
        })
    }

    /// Decides the fate of one task attempt. `ordinal` is the cumulative
    /// task ordinal used by [`FaultPlan::poison_after`]; `n_iters` is the
    /// size of the task's iteration subregion. A returned fault always
    /// kills the attempt strictly before it completes (`survive_iters <
    /// n_iters`).
    pub fn decide(
        &self,
        loop_index: u64,
        color: u64,
        attempt: u32,
        ordinal: u64,
        n_iters: u64,
    ) -> Option<InjectedFault> {
        if self.task_failure_rate <= 0.0 {
            return None;
        }
        let h = hash4(self.seed, loop_index, color, attempt as u64);
        // 53 uniform bits → a unit float, compared against the rate.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= self.task_failure_rate {
            return None;
        }
        let survive_iters =
            if n_iters == 0 { 0 } else { hash4(h, loop_index, color, attempt as u64) % n_iters };
        Some(InjectedFault {
            poison: self.poison_after.is_some_and(|t| ordinal >= t),
            survive_iters,
        })
    }
}

/// One decided fault: how far the attempt runs and how it dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// Die by panicking (exercises `catch_unwind` isolation) instead of
    /// stopping cleanly.
    pub poison: bool,
    /// Iterations of the subregion executed before the attempt dies.
    pub survive_iters: u64,
}

/// Marker payload for injected poison panics, so the executor can tell an
/// injected failure (retryable) from a genuine bug (fatal).
pub struct InjectedPanic;

/// How the executor responds to failed task attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts per task after the first try.
    pub max_retries: u32,
    /// Base backoff between attempts; attempt `k` sleeps `k * backoff`.
    pub backoff: Duration,
    /// Re-execute tasks that exhaust their retries sequentially on the
    /// main thread (the graceful-degradation path). With this off,
    /// exhaustion is an [`crate::exec::ExecError::TaskFailed`] error.
    pub sequential_recovery: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(50),
            sequential_recovery: true,
        }
    }
}

/// splitmix64-style finalizer: the standard 64-bit avalanche mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes four coordinates into one well-mixed word.
#[inline]
fn hash4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    mix(mix(mix(mix(a) ^ b) ^ c) ^ d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan::quiescent(42);
        for li in 0..8 {
            for c in 0..64 {
                assert_eq!(plan.decide(li, c, 0, c, 100), None);
            }
        }
    }

    #[test]
    fn unit_rate_always_fires_and_dies_mid_loop() {
        let plan = FaultPlan { seed: 7, task_failure_rate: 1.0, poison_after: None };
        for c in 0..64 {
            let f = plan.decide(0, c, 0, c, 10).expect("rate 1.0 fires");
            assert!(f.survive_iters < 10);
            assert!(!f.poison);
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan { seed: 1234, task_failure_rate: 0.5, poison_after: Some(3) };
        for li in 0..4 {
            for c in 0..32 {
                for attempt in 0..3 {
                    let a = plan.decide(li, c, attempt, li * 32 + c, 17);
                    let b = plan.decide(li, c, attempt, li * 32 + c, 17);
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn seed_changes_schedule() {
        let a = FaultPlan { seed: 1, task_failure_rate: 0.5, poison_after: None };
        let b = FaultPlan { seed: 2, task_failure_rate: 0.5, poison_after: None };
        let fire = |p: &FaultPlan| {
            (0..256).filter(|&c| p.decide(0, c, 0, c, 8).is_some()).collect::<Vec<_>>()
        };
        assert_ne!(fire(&a), fire(&b));
    }

    #[test]
    fn rate_is_roughly_respected() {
        let plan = FaultPlan { seed: 99, task_failure_rate: 0.25, poison_after: None };
        let fired = (0..4096).filter(|&c| plan.decide(0, c, 0, c, 8).is_some()).count();
        let frac = fired as f64 / 4096.0;
        assert!((frac - 0.25).abs() < 0.05, "observed failure rate {frac}");
    }

    #[test]
    fn poison_after_thresholds_on_ordinal() {
        let plan = FaultPlan { seed: 5, task_failure_rate: 1.0, poison_after: Some(10) };
        assert!(!plan.decide(0, 0, 0, 9, 4).unwrap().poison);
        assert!(plan.decide(0, 0, 0, 10, 4).unwrap().poison);
        assert!(plan.decide(0, 0, 0, 11, 4).unwrap().poison);
    }
}
