//! Parallel execution of auto-parallelized loops on host threads.
//!
//! One task per subregion ("color") of the iteration partition, scheduled
//! over a fixed worker pool. The executor implements the paper's runtime
//! mechanisms faithfully:
//!
//! * **legality checking** — with [`ExecOptions::check_legality`] every
//!   region access is validated against the task's subregion of the
//!   corresponding access partition; a violation means the synthesized
//!   partitioning was wrong, so tests run with this on;
//! * **two-step uncentered reductions** (Section 2) — `Buffered` reductions
//!   accumulate into task-local buffers merged deterministically (in color
//!   order) after the parallel phase;
//! * **guards** (Section 5.1) — in relaxed loops a reduction applies only
//!   when its target lies in the task's subregion of the (disjoint)
//!   reduction partition, and centered writes apply only for the task that
//!   first owns the iteration, so aliased iteration partitions preserve
//!   sequential semantics;
//! * **private sub-partitions** (Section 5.2) — `BufferedPrivate`
//!   reductions write directly inside the private sub-partition and buffer
//!   only the shared remainder, shrinking buffer bytes (reported in
//!   [`ExecReport`]);
//! * **fault tolerance** (see [`crate::fault`]) — with a [`FaultPlan`]
//!   installed, task attempts die deterministically mid-loop (cleanly or by
//!   poisoning the worker with a panic); every attempt runs against a
//!   pre-attempt snapshot of the task's exclusive effect sets so failed
//!   attempts roll back, bounded retries with backoff re-run the task, and
//!   tasks that exhaust their retries are re-executed sequentially on the
//!   main thread — so results stay bit-identical to the sequential
//!   interpreter under any fault schedule.

use crate::fault::{FaultPlan, InjectedPanic, RetryPolicy};
use crate::shared::SharedStore;
use parking_lot::Mutex;
use partir_core::pipeline::{LoopPlan, ParallelPlan, PlannedReduce};
use partir_dpl::func::{FnDef, FnId, FnTable, IndexFn, MultiFn};
use partir_dpl::index_set::{Idx, IndexSet};
use partir_dpl::partition::Partition;
use partir_dpl::region::{FieldId, RegionId, Schema, Store};
use partir_ir::ast::{AccessId, Loop, ReduceOp, Stmt};
use partir_ir::interp::{run_loop_over, DataCtx};
use partir_obs::json::Json;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    pub n_threads: usize,
    /// Validate every access against its partition subregion (dynamic proof
    /// that the solver's output is legal). On for tests, off for benches.
    pub check_legality: bool,
    /// Deterministic fault injection; `None` runs on a perfect machine.
    pub fault: Option<FaultPlan>,
    /// Recovery policy for failed task attempts (only consulted when
    /// attempts actually fail).
    pub retry: RetryPolicy,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            n_threads: 4,
            check_legality: true,
            fault: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Execution statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecReport {
    pub tasks_run: u64,
    /// Total bytes of reduction buffers allocated across tasks and loops.
    pub buffer_bytes: u64,
    /// Buffer bytes avoided by private sub-partitions (Section 5.2): the
    /// difference between full-subregion buffers and the shared remainder
    /// actually allocated.
    pub private_buffer_bytes_saved: u64,
    /// Per-access legality checks performed (0 when checking is off).
    pub legality_checks: u64,
    /// Guarded-reduction applications / skips (relaxed loops).
    pub guard_hits: u64,
    pub guard_skips: u64,
    /// Centered writes skipped because another task owns the iteration.
    pub write_skips: u64,
    /// Task attempts killed by the fault plan (clean kills and poisons).
    pub faults_injected: u64,
    /// Re-attempts after a failed attempt (bounded by the retry policy).
    pub task_retries: u64,
    /// Tasks that exhausted their retries and were re-executed
    /// sequentially on the main thread.
    pub tasks_recovered: u64,
    /// Worker panics contained by the `catch_unwind` isolation barrier.
    pub panics_isolated: u64,
    /// True when the sequential-recovery slow path ran for any task:
    /// results are still bit-identical to the sequential interpreter, but
    /// part of the run was not parallel.
    pub degraded: bool,
}

impl ExecReport {
    /// Machine-readable form, for the JSON report envelopes.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("tasks_run", self.tasks_run)
            .with("buffer_bytes", self.buffer_bytes)
            .with("private_buffer_bytes_saved", self.private_buffer_bytes_saved)
            .with("legality_checks", self.legality_checks)
            .with("guard_hits", self.guard_hits)
            .with("guard_skips", self.guard_skips)
            .with("write_skips", self.write_skips)
            .with("faults_injected", self.faults_injected)
            .with("task_retries", self.task_retries)
            .with("tasks_recovered", self.tasks_recovered)
            .with("panics_isolated", self.panics_isolated)
            .with("degraded", self.degraded)
    }
}

/// Structured description of a legality-check failure: which access of
/// which loop, run by which task, touched which element outside its
/// subregion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LegalityViolation {
    /// Loop index in execution order.
    pub loop_id: usize,
    /// The task (color) whose access escaped its subregion.
    pub task: usize,
    /// Region the violating access targets.
    pub region: RegionId,
    /// The element touched outside the subregion.
    pub index: Idx,
    /// The access site within the loop.
    pub access: AccessId,
}

impl fmt::Display for LegalityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loop {} task {}: access {:?} touched element {} of region r{} outside its subregion",
            self.loop_id, self.task, self.access, self.index, self.region.0
        )
    }
}

/// Execution failure.
#[derive(Debug)]
pub enum ExecError {
    /// The plan does not describe this program (loop counts differ).
    PlanMismatch { plan_loops: usize, program_loops: usize },
    /// A plan references a partition index outside the evaluated set.
    PartitionIndexOutOfBounds { loop_index: usize, part: usize, len: usize },
    /// Partitions disagree on the launch width (subregion counts differ).
    PartitionWidthMismatch { part: usize, expected: usize, got: usize },
    /// A partition contains element indices outside its region.
    PartitionExceedsRegion { loop_index: usize, part: usize, index: Idx, size: u64 },
    /// The iteration partition misses elements of the iteration space.
    IncompleteIteration { loop_index: usize },
    /// A loop with centered reductions got an aliased iteration partition.
    IterationNotDisjoint { loop_index: usize },
    /// A direct/guarded reduction partition is not disjoint.
    ReductionNotDisjoint { loop_index: usize, access: AccessId },
    /// A task accessed an element outside its subregion (legality check).
    Legality(LegalityViolation),
    /// A worker panicked (a genuine bug, not an injected fault).
    TaskPanic(String),
    /// A task exhausted its retries and sequential recovery was disabled.
    TaskFailed { loop_index: usize, color: usize, attempts: u32 },
    /// Internal buffered-reduction bookkeeping lost its field binding.
    BufferStateCorrupt { loop_index: usize },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PlanMismatch { plan_loops, program_loops } => {
                write!(f, "plan describes {plan_loops} loops but the program has {program_loops}")
            }
            ExecError::PartitionIndexOutOfBounds { loop_index, part, len } => {
                write!(
                    f,
                    "loop {loop_index}: partition index {part} out of bounds ({len} evaluated)"
                )
            }
            ExecError::PartitionWidthMismatch { part, expected, got } => {
                write!(f, "partition {part} has {got} subregions, launch width is {expected}")
            }
            ExecError::PartitionExceedsRegion { loop_index, part, index, size } => {
                write!(
                    f,
                    "loop {loop_index}: partition {part} contains element {index} outside its region (size {size})"
                )
            }
            ExecError::IncompleteIteration { loop_index } => {
                write!(f, "loop {loop_index}: iteration partition incomplete")
            }
            ExecError::IterationNotDisjoint { loop_index } => {
                write!(
                    f,
                    "loop {loop_index}: centered reductions need a disjoint iteration partition"
                )
            }
            ExecError::ReductionNotDisjoint { loop_index, access } => {
                write!(f, "loop {loop_index}: reduction partition for {access:?} not disjoint")
            }
            ExecError::Legality(v) => write!(f, "legality violation: {v}"),
            ExecError::TaskPanic(m) => write!(f, "task panicked: {m}"),
            ExecError::TaskFailed { loop_index, color, attempts } => {
                write!(
                    f,
                    "loop {loop_index}: task {color} failed all {attempts} attempts and sequential recovery is disabled"
                )
            }
            ExecError::BufferStateCorrupt { loop_index } => {
                write!(f, "loop {loop_index}: buffered reduction recorded an op without a field")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-access execution mode with partition data resolved.
enum Mode<'a> {
    /// Plain read/write/centered-reduce/direct-reduce: access checked
    /// against the subregion, effect applied in place.
    Plain,
    /// Relaxed guarded reduction: apply iff target in the subregion.
    Guarded,
    /// Buffered reduction over the per-color buffer set.
    Buffered { buf_sets: &'a [IndexSet] },
    /// Direct within `private`, buffered over `buf_sets` otherwise.
    BufferedPrivate { private: &'a Partition, buf_sets: &'a [IndexSet] },
}

/// Executes every loop of `program` in order under `plan`.
///
/// `parts` must be `plan.evaluate(...)` output (indexed by `PartId`); every
/// partition must have the same number of subregions (the launch width).
/// Both properties are validated up front and reported as typed errors.
pub fn execute_program(
    program: &[Loop],
    plan: &ParallelPlan,
    parts: &[Arc<Partition>],
    store: &mut Store,
    fns: &FnTable,
    opts: &ExecOptions,
) -> Result<ExecReport, ExecError> {
    {
        let vspan = partir_obs::span("exec.validate");
        validate_plan(program, plan, parts, store.schema(), opts)?;
        drop(vspan);
    }
    let mut report = ExecReport::default();
    // Cumulative task ordinal (loop-major, color-minor): the deterministic
    // coordinate `FaultPlan::poison_after` thresholds on.
    let mut ordinal_base = 0u64;
    for (li, lp) in program.iter().enumerate() {
        let n_colors = parts[plan.loops[li].iter.0 as usize].num_subregions() as u64;
        execute_loop(li, lp, plan, parts, store, fns, opts, &mut report, ordinal_base)?;
        ordinal_base += n_colors;
    }
    partir_obs::counter("exec.tasks_run", report.tasks_run);
    partir_obs::counter("exec.legality_checks", report.legality_checks);
    partir_obs::counter("exec.buffer_bytes", report.buffer_bytes);
    partir_obs::counter("exec.private_buffer_bytes_saved", report.private_buffer_bytes_saved);
    partir_obs::counter("exec.faults_injected", report.faults_injected);
    partir_obs::counter("exec.task_retries", report.task_retries);
    partir_obs::counter("exec.tasks_recovered", report.tasks_recovered);
    partir_obs::counter("exec.panics_isolated", report.panics_isolated);
    partir_obs::flush_counters();
    Ok(report)
}

/// Up-front validation of the plan/partition invariants the unsafe shared
/// store relies on, as typed errors instead of downstream panics or (in
/// release builds) out-of-bounds raw-pointer arithmetic.
fn validate_plan(
    program: &[Loop],
    plan: &ParallelPlan,
    parts: &[Arc<Partition>],
    schema: &Schema,
    opts: &ExecOptions,
) -> Result<(), ExecError> {
    if plan.loops.len() != program.len() {
        return Err(ExecError::PlanMismatch {
            plan_loops: plan.loops.len(),
            program_loops: program.len(),
        });
    }
    let width = parts.first().map(|p| p.num_subregions()).unwrap_or(0);
    for (pi, p) in parts.iter().enumerate() {
        if p.num_subregions() != width {
            return Err(ExecError::PartitionWidthMismatch {
                part: pi,
                expected: width,
                got: p.num_subregions(),
            });
        }
    }
    let check_part = |li: usize, part: usize| -> Result<(), ExecError> {
        if part >= parts.len() {
            return Err(ExecError::PartitionIndexOutOfBounds {
                loop_index: li,
                part,
                len: parts.len(),
            });
        }
        Ok(())
    };
    // Element-bounds validation walks every subregion, so it rides on the
    // legality-checking switch (on for tests, off for benches).
    let check_bounds = |li: usize, part: usize, region: RegionId| -> Result<(), ExecError> {
        if !opts.check_legality {
            return Ok(());
        }
        let size = schema.region_size(region);
        for sub in parts[part].subregions() {
            if let Some(m) = sub.max() {
                if m >= size {
                    return Err(ExecError::PartitionExceedsRegion {
                        loop_index: li,
                        part,
                        index: m,
                        size,
                    });
                }
            }
        }
        Ok(())
    };
    for (li, lplan) in plan.loops.iter().enumerate() {
        check_part(li, lplan.iter.0 as usize)?;
        check_bounds(li, lplan.iter.0 as usize, program[li].region)?;
        for ap in &lplan.accesses {
            check_part(li, ap.part.0 as usize)?;
            check_bounds(li, ap.part.0 as usize, ap.region)?;
            if let Some(PlannedReduce::BufferedPrivate { private }) = &ap.reduce {
                check_part(li, private.0 as usize)?;
                check_bounds(li, private.0 as usize, ap.region)?;
            }
        }
    }
    Ok(())
}

/// Mutating access sites of a loop body: `(access, field, is_write)`.
/// These determine which store elements a task attempt may have dirtied,
/// and hence what a pre-attempt snapshot must save.
fn collect_mut_sites(body: &[Stmt], out: &mut Vec<(AccessId, FieldId, bool)>) {
    for s in body {
        match s {
            Stmt::ValWrite { access, field, .. } => out.push((*access, *field, true)),
            Stmt::ValReduce { access, field, .. } => out.push((*access, *field, false)),
            Stmt::ForEach { body, .. } => collect_mut_sites(body, out),
            _ => {}
        }
    }
}

/// Saved pre-attempt values of one task's exclusive effect sets. Restoring
/// is race-free: every saved element is owned by exactly this task (the
/// same ownership argument that makes the direct effects race-free).
struct TaskSnapshot<'a> {
    saved: Vec<(FieldId, &'a IndexSet, Vec<f64>)>,
}

/// Resolves the store elements one mutating site may touch for `color`, or
/// `None` when the site's effects are task-local (buffered reductions).
fn effect_set<'a>(
    site: &(AccessId, FieldId, bool),
    lplan: &LoopPlan,
    parts: &'a [Arc<Partition>],
    iter: &'a Partition,
    write_own: Option<&'a Vec<IndexSet>>,
    color: usize,
) -> Option<&'a IndexSet> {
    let (access, _, is_write) = site;
    let ap = &lplan.accesses[access.0 as usize];
    if *is_write {
        // Centered write: the task's iterations, narrowed to first-owner
        // elements when the iteration partition aliases.
        return Some(match write_own {
            Some(own) => &own[color],
            None => iter.subregion(color),
        });
    }
    match &ap.reduce {
        // Centered reduction: disjoint iteration partition enforced.
        None => Some(iter.subregion(color)),
        // Direct/guarded effects land in the (disjoint) access partition.
        Some(PlannedReduce::Direct) | Some(PlannedReduce::Guarded) => {
            Some(parts[ap.part.0 as usize].subregion(color))
        }
        // Buffered contributions live in task-local buffers until the
        // post-scope merge; a failed attempt just drops them.
        Some(PlannedReduce::Buffered) => None,
        // Only the private (disjoint) slice is mutated in place.
        Some(PlannedReduce::BufferedPrivate { private }) => {
            Some(parts[private.0 as usize].subregion(color))
        }
    }
}

/// Saves the pre-attempt values of every element the task may mutate.
///
/// # Safety argument
/// Reads race with nothing: each saved element is exclusively owned by this
/// task during the parallel phase (see `effect_set` and shared.rs docs).
fn take_snapshot<'a>(
    shared: &SharedStore,
    sites: &[(AccessId, FieldId, bool)],
    lplan: &LoopPlan,
    parts: &'a [Arc<Partition>],
    iter: &'a Partition,
    write_own: Option<&'a Vec<IndexSet>>,
    color: usize,
) -> TaskSnapshot<'a> {
    let mut saved: Vec<(FieldId, &IndexSet, Vec<f64>)> = Vec::new();
    for site in sites {
        let Some(set) = effect_set(site, lplan, parts, iter, write_own, color) else {
            continue;
        };
        let field = site.1;
        if saved.iter().any(|(f, s, _)| *f == field && std::ptr::eq(*s, set)) {
            continue; // site already covered (same field, same element set)
        }
        let vals: Vec<f64> = set.iter().map(|i| unsafe { shared.read_f64(field, i) }).collect();
        saved.push((field, set, vals));
    }
    TaskSnapshot { saved }
}

/// Rolls a failed attempt back to the snapshot (same exclusivity argument
/// as `take_snapshot`).
fn restore_snapshot(shared: &SharedStore, snap: &TaskSnapshot<'_>) {
    for (field, set, vals) in &snap.saved {
        for (rank, i) in set.iter().enumerate() {
            unsafe { shared.write_f64(*field, i, vals[rank]) };
        }
    }
}

/// How one task (color) ended after its attempt loop.
enum TaskOutcome {
    /// Completed; carries the task-local reduction buffers to publish.
    Done(Vec<Vec<f64>>),
    /// All attempts failed; queued for sequential recovery.
    Exhausted,
    /// Fatal condition (legality violation or genuine panic); stop the run.
    Abort,
}

#[allow(clippy::too_many_arguments)]
fn execute_loop(
    li: usize,
    lp: &Loop,
    plan: &ParallelPlan,
    parts: &[Arc<Partition>],
    store: &mut Store,
    fns: &FnTable,
    opts: &ExecOptions,
    report: &mut ExecReport,
    ordinal_base: u64,
) -> Result<(), ExecError> {
    let loop_plan = &plan.loops[li];
    let iter: &Partition = &parts[loop_plan.iter.0 as usize];
    let n_colors = iter.num_subregions();
    let region_size = store.schema().region_size(lp.region);
    let tracing = partir_obs::trace_enabled();
    let loop_span = partir_obs::span_with(
        "exec.loop",
        vec![
            ("loop", li.into()),
            ("loop_name", lp.name.as_str().into()),
            ("colors", n_colors.into()),
        ],
    );

    // Dynamic validation of the partitioning invariants the plan relies on.
    if !iter.is_complete(region_size) {
        return Err(ExecError::IncompleteIteration { loop_index: li });
    }
    let iter_disjoint = iter.is_disjoint();
    if loop_plan.iter_must_be_disjoint && !iter_disjoint {
        return Err(ExecError::IterationNotDisjoint { loop_index: li });
    }

    // Write-ownership sets: with an aliased iteration partition, a centered
    // write applies only in the first task owning the iteration.
    let write_own: Option<Vec<IndexSet>> = if iter_disjoint {
        None
    } else {
        let mut seen = IndexSet::new();
        let own = iter
            .iter()
            .map(|s| {
                let mine = s.difference(&seen);
                seen = seen.union(s);
                mine
            })
            .collect();
        Some(own)
    };

    // Resolve per-access modes and allocate buffer sets.
    let mut modes: Vec<Mode> = Vec::with_capacity(loop_plan.accesses.len());
    // Buffer sets, owned out-of-line so `Mode` can borrow them.
    let mut all_buf_sets: Vec<Vec<IndexSet>> = Vec::new();
    let mut buf_set_of_access: Vec<Option<usize>> = vec![None; loop_plan.accesses.len()];
    for (ai, ap) in loop_plan.accesses.iter().enumerate() {
        let part = &parts[ap.part.0 as usize];
        match &ap.reduce {
            None | Some(PlannedReduce::Direct) => {
                if matches!(ap.reduce, Some(PlannedReduce::Direct)) && !part.is_disjoint() {
                    return Err(ExecError::ReductionNotDisjoint {
                        loop_index: li,
                        access: AccessId(ai as u32),
                    });
                }
            }
            Some(PlannedReduce::Guarded) => {
                if !part.is_disjoint() {
                    return Err(ExecError::ReductionNotDisjoint {
                        loop_index: li,
                        access: AccessId(ai as u32),
                    });
                }
            }
            Some(PlannedReduce::Buffered) => {
                let sets: Vec<IndexSet> = part.subregions().to_vec();
                report.buffer_bytes += sets.iter().map(|s| s.len() * 8).sum::<u64>();
                buf_set_of_access[ai] = Some(all_buf_sets.len());
                all_buf_sets.push(sets);
            }
            Some(PlannedReduce::BufferedPrivate { private }) => {
                let ppart = &parts[private.0 as usize];
                if !ppart.is_disjoint() {
                    return Err(ExecError::ReductionNotDisjoint {
                        loop_index: li,
                        access: AccessId(ai as u32),
                    });
                }
                let sets: Vec<IndexSet> = part
                    .subregions()
                    .iter()
                    .zip(ppart.subregions())
                    .map(|(a, p)| a.difference(p))
                    .collect();
                let full_bytes = part.subregions().iter().map(|s| s.len() * 8).sum::<u64>();
                let shared_bytes = sets.iter().map(|s| s.len() * 8).sum::<u64>();
                report.buffer_bytes += shared_bytes;
                report.private_buffer_bytes_saved += full_bytes - shared_bytes;
                buf_set_of_access[ai] = Some(all_buf_sets.len());
                all_buf_sets.push(sets);
            }
        }
    }
    for (ai, ap) in loop_plan.accesses.iter().enumerate() {
        let mode = match &ap.reduce {
            None | Some(PlannedReduce::Direct) => Mode::Plain,
            Some(PlannedReduce::Guarded) => Mode::Guarded,
            Some(PlannedReduce::Buffered) => Mode::Buffered {
                buf_sets: &all_buf_sets
                    [buf_set_of_access[ai].expect("buffer set allocated in first pass")],
            },
            Some(PlannedReduce::BufferedPrivate { private }) => Mode::BufferedPrivate {
                private: &parts[private.0 as usize],
                buf_sets: &all_buf_sets
                    [buf_set_of_access[ai].expect("buffer set allocated in first pass")],
            },
        };
        modes.push(mode);
    }

    // Mutating sites (for effect-set snapshots); only needed under faults.
    let mut_sites: Vec<(AccessId, FieldId, bool)> = if opts.fault.is_some() {
        let mut sites = Vec::new();
        collect_mut_sites(&lp.body, &mut sites);
        sites
    } else {
        Vec::new()
    };

    // Buffers returned by tasks: buffers[buf_idx][color].
    let buffers: Vec<Vec<Mutex<Option<Vec<f64>>>>> =
        all_buf_sets.iter().map(|sets| sets.iter().map(|_| Mutex::new(None)).collect()).collect();
    // Reduce ops discovered during execution (per buffered access index).
    let buf_ops: Vec<Mutex<Option<ReduceOp>>> =
        all_buf_sets.iter().map(|_| Mutex::new(None)).collect();
    // The field each buffered access targets.
    let buf_fields: Vec<Mutex<Option<FieldId>>> =
        all_buf_sets.iter().map(|_| Mutex::new(None)).collect();

    let violation: Mutex<Option<LegalityViolation>> = Mutex::new(None);
    let genuine_panic: Mutex<Option<String>> = Mutex::new(None);
    // Colors that exhausted their retries, for sequential recovery.
    let failed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let abort = AtomicBool::new(false);
    let guard_hits = AtomicU64::new(0);
    let guard_skips = AtomicU64::new(0);
    let write_skips = AtomicU64::new(0);
    let legality_checks = AtomicU64::new(0);
    let faults_injected = AtomicU64::new(0);
    let task_retries = AtomicU64::new(0);
    let panics_isolated = AtomicU64::new(0);
    let next_color = AtomicUsize::new(0);
    let schema = store.schema().clone();
    let shared = SharedStore::new(store);

    let scope_result = crossbeam::scope(|s| {
        for _ in 0..opts.n_threads.max(1) {
            s.spawn(|_| {
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let color = next_color.fetch_add(1, Ordering::Relaxed);
                    if color >= n_colors {
                        break;
                    }
                    let sub = iter.subregion(color);
                    // Pre-attempt snapshot of the task's exclusive effect
                    // sets, so any failed attempt can roll back.
                    let snapshot = opts.fault.map(|_| {
                        take_snapshot(
                            &shared,
                            &mut_sites,
                            loop_plan,
                            parts,
                            iter,
                            write_own.as_ref(),
                            color,
                        )
                    });
                    let mut attempt: u32 = 0;
                    let outcome = loop {
                        let injection = opts.fault.and_then(|fp| {
                            fp.decide(
                                li as u64,
                                color as u64,
                                attempt,
                                ordinal_base + color as u64,
                                sub.len(),
                            )
                        });
                        // AssertUnwindSafe: shared state touched by a dying
                        // attempt is exactly the snapshot's effect sets
                        // (rolled back below) and task-local buffers (moved
                        // out only on success, dropped by the unwind).
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let mut ctx = TaskCtx {
                                shared: &shared,
                                fns,
                                schema: &schema,
                                plan: loop_plan,
                                parts,
                                modes: &modes,
                                color,
                                write_own: write_own.as_ref().map(|o| &o[color]),
                                check: opts.check_legality,
                                local_bufs: all_buf_sets.iter().map(|_| Vec::new()).collect(),
                                buf_set_of_access: &buf_set_of_access,
                                buf_ops: &buf_ops,
                                buf_fields: &buf_fields,
                                checks_done: 0,
                                guard_hits: &guard_hits,
                                guard_skips: &guard_skips,
                                write_skips: &write_skips,
                                violation: &violation,
                            };
                            let t_task =
                                if tracing { Some(std::time::Instant::now()) } else { None };
                            let killed = match injection {
                                Some(fault) => {
                                    run_loop_over(
                                        lp,
                                        &mut ctx,
                                        sub.iter().take(fault.survive_iters as usize),
                                    );
                                    if fault.poison {
                                        std::panic::panic_any(InjectedPanic);
                                    }
                                    true
                                }
                                None => {
                                    run_loop_over(lp, &mut ctx, sub.iter());
                                    false
                                }
                            };
                            if !killed {
                                if let Some(t) = t_task {
                                    partir_obs::instant(
                                        "exec.task",
                                        vec![
                                            ("loop", li.into()),
                                            ("color", color.into()),
                                            ("attempt", attempt.into()),
                                            ("elapsed_ns", (t.elapsed().as_nanos() as u64).into()),
                                        ],
                                    );
                                }
                            }
                            (ctx.checks_done, ctx.local_bufs, killed)
                        }));
                        let injected_death = match result {
                            Ok((checks, bufs, killed)) => {
                                legality_checks.fetch_add(checks, Ordering::Relaxed);
                                if !killed {
                                    break TaskOutcome::Done(bufs);
                                }
                                true // clean injected kill
                            }
                            Err(payload) => {
                                // A legality panic means the *plan* is wrong:
                                // never retried, never recovered — masking it
                                // would hide the solver bug faults are
                                // supposed to be orthogonal to.
                                if violation.lock().is_some() {
                                    abort.store(true, Ordering::Relaxed);
                                    break TaskOutcome::Abort;
                                }
                                panics_isolated.fetch_add(1, Ordering::Relaxed);
                                if payload.downcast_ref::<InjectedPanic>().is_some() {
                                    true // injected poison
                                } else {
                                    // Genuine bug: isolate and stop the run.
                                    let mut slot = genuine_panic.lock();
                                    if slot.is_none() {
                                        *slot = Some(panic_message(payload));
                                    }
                                    drop(slot);
                                    abort.store(true, Ordering::Relaxed);
                                    break TaskOutcome::Abort;
                                }
                            }
                        };
                        debug_assert!(injected_death);
                        faults_injected.fetch_add(1, Ordering::Relaxed);
                        if tracing {
                            partir_obs::instant(
                                "fault.injected",
                                vec![
                                    ("loop", li.into()),
                                    ("color", color.into()),
                                    ("attempt", attempt.into()),
                                ],
                            );
                        }
                        if let Some(snap) = &snapshot {
                            restore_snapshot(&shared, snap);
                        }
                        if attempt >= opts.retry.max_retries {
                            break TaskOutcome::Exhausted;
                        }
                        attempt += 1;
                        task_retries.fetch_add(1, Ordering::Relaxed);
                        if tracing {
                            partir_obs::instant(
                                "task.retry",
                                vec![
                                    ("loop", li.into()),
                                    ("color", color.into()),
                                    ("attempt", attempt.into()),
                                ],
                            );
                        }
                        if !opts.retry.backoff.is_zero() {
                            std::thread::sleep(opts.retry.backoff * attempt);
                        }
                    };
                    match outcome {
                        TaskOutcome::Done(bufs) => {
                            for (bi, buf) in bufs.into_iter().enumerate() {
                                if !buf.is_empty() {
                                    *buffers[bi][color].lock() = Some(buf);
                                }
                            }
                        }
                        TaskOutcome::Exhausted => failed.lock().push(color),
                        TaskOutcome::Abort => break,
                    }
                }
            });
        }
    });
    if let Some(v) = violation.lock().take() {
        return Err(ExecError::Legality(v));
    }
    if let Some(m) = genuine_panic.lock().take() {
        return Err(ExecError::TaskPanic(m));
    }
    if let Err(p) = scope_result {
        // A panic escaped the per-attempt isolation barrier (bookkeeping
        // code, not a task body).
        return Err(ExecError::TaskPanic(panic_message(p)));
    }

    // Graceful degradation: re-execute exhausted tasks sequentially on the
    // main thread through the same task context (guards, ownership sets and
    // buffers included), which is the reference-interpreter semantics
    // restricted to the failed subregion — bit-identical, just not parallel.
    let mut failed_colors = failed.into_inner();
    failed_colors.sort_unstable();
    if !failed_colors.is_empty() && !opts.retry.sequential_recovery {
        return Err(ExecError::TaskFailed {
            loop_index: li,
            color: failed_colors[0],
            attempts: opts.retry.max_retries + 1,
        });
    }
    for color in failed_colors {
        let recovery = catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = TaskCtx {
                shared: &shared,
                fns,
                schema: &schema,
                plan: loop_plan,
                parts,
                modes: &modes,
                color,
                write_own: write_own.as_ref().map(|o| &o[color]),
                check: opts.check_legality,
                local_bufs: all_buf_sets.iter().map(|_| Vec::new()).collect(),
                buf_set_of_access: &buf_set_of_access,
                buf_ops: &buf_ops,
                buf_fields: &buf_fields,
                checks_done: 0,
                guard_hits: &guard_hits,
                guard_skips: &guard_skips,
                write_skips: &write_skips,
                violation: &violation,
            };
            run_loop_over(lp, &mut ctx, iter.subregion(color).iter());
            (ctx.checks_done, ctx.local_bufs)
        }));
        match recovery {
            Ok((checks, bufs)) => {
                legality_checks.fetch_add(checks, Ordering::Relaxed);
                for (bi, buf) in bufs.into_iter().enumerate() {
                    if !buf.is_empty() {
                        *buffers[bi][color].lock() = Some(buf);
                    }
                }
                report.tasks_recovered += 1;
                report.degraded = true;
                if tracing {
                    partir_obs::instant(
                        "task.recovered",
                        vec![("loop", li.into()), ("color", color.into())],
                    );
                }
            }
            Err(p) => {
                if let Some(v) = violation.lock().take() {
                    return Err(ExecError::Legality(v));
                }
                return Err(ExecError::TaskPanic(panic_message(p)));
            }
        }
    }
    drop(shared);

    // Deterministic merge: color order, ascending element order.
    let merge_span = partir_obs::span_with("exec.merge", vec![("loop", (li as u64).into())]);
    for (bi, sets) in all_buf_sets.iter().enumerate() {
        let op = match *buf_ops[bi].lock() {
            Some(op) => op,
            None => continue, // no contributions at all
        };
        let field = match *buf_fields[bi].lock() {
            Some(f) => f,
            None => return Err(ExecError::BufferStateCorrupt { loop_index: li }),
        };
        let fs = store.f64s_mut(field);
        for (color, set) in sets.iter().enumerate() {
            if let Some(buf) = buffers[bi][color].lock().take() {
                for (rank, t) in set.iter().enumerate() {
                    let v = buf[rank];
                    let slot = &mut fs[t as usize];
                    *slot = op.apply(*slot, v);
                }
            }
        }
    }
    drop(merge_span);

    report.tasks_run += n_colors as u64;
    report.legality_checks += legality_checks.load(Ordering::Relaxed);
    report.guard_hits += guard_hits.load(Ordering::Relaxed);
    report.guard_skips += guard_skips.load(Ordering::Relaxed);
    report.write_skips += write_skips.load(Ordering::Relaxed);
    report.faults_injected += faults_injected.load(Ordering::Relaxed);
    report.task_retries += task_retries.load(Ordering::Relaxed);
    report.panics_isolated += panics_isolated.load(Ordering::Relaxed);
    loop_span.close_with(vec![
        ("tasks", n_colors.into()),
        ("legality_checks", legality_checks.load(Ordering::Relaxed).into()),
        ("guard_hits", guard_hits.load(Ordering::Relaxed).into()),
        ("guard_skips", guard_skips.load(Ordering::Relaxed).into()),
        ("write_skips", write_skips.load(Ordering::Relaxed).into()),
        ("faults_injected", faults_injected.load(Ordering::Relaxed).into()),
        ("task_retries", task_retries.load(Ordering::Relaxed).into()),
    ]);
    Ok(())
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if p.downcast_ref::<InjectedPanic>().is_some() {
        "injected fault".to_string()
    } else {
        "unknown panic".to_string()
    }
}

/// Task-local data context: all region traffic from one task.
struct TaskCtx<'a> {
    shared: &'a SharedStore,
    fns: &'a FnTable,
    schema: &'a Schema,
    plan: &'a partir_core::pipeline::LoopPlan,
    parts: &'a [Arc<Partition>],
    modes: &'a [Mode<'a>],
    color: usize,
    write_own: Option<&'a IndexSet>,
    check: bool,
    /// Task-local reduction buffers, one per buffered access (lazily
    /// identity-filled on first use).
    local_bufs: Vec<Vec<f64>>,
    buf_set_of_access: &'a [Option<usize>],
    buf_ops: &'a [Mutex<Option<ReduceOp>>],
    buf_fields: &'a [Mutex<Option<FieldId>>],
    /// Legality checks this task performed (plain counter, merged into the
    /// shared total once at task end).
    checks_done: u64,
    guard_hits: &'a AtomicU64,
    guard_skips: &'a AtomicU64,
    write_skips: &'a AtomicU64,
    /// First legality violation observed (recorded before the panic that
    /// aborts the task, so the executor can report a structured error).
    violation: &'a Mutex<Option<LegalityViolation>>,
}

impl TaskCtx<'_> {
    #[inline]
    fn subregion(&self, a: AccessId) -> &IndexSet {
        let part = self.plan.accesses[a.0 as usize].part;
        self.parts[part.0 as usize].subregion(self.color)
    }

    #[cold]
    fn legality_violation(&self, a: AccessId, i: Idx) -> ! {
        let v = LegalityViolation {
            loop_id: self.plan.loop_index,
            task: self.color,
            region: self.plan.accesses[a.0 as usize].region,
            index: i,
            access: a,
        };
        let mut slot = self.violation.lock();
        if slot.is_none() {
            *slot = Some(v);
        }
        drop(slot);
        panic!("legality violation: {v}");
    }

    #[inline]
    fn check_access(&mut self, a: AccessId, i: Idx) {
        if self.check {
            self.checks_done += 1;
            if !self.subregion(a).contains(i) {
                self.legality_violation(a, i);
            }
        }
    }

    fn eval_index_fn(&self, f: &IndexFn, i: Idx, target_size: u64) -> Idx {
        match f {
            IndexFn::Identity => i,
            IndexFn::Affine { mul, add } => {
                let v = (i as i64) * mul + add;
                assert!(v >= 0 && (v as u64) < target_size, "affine out of range");
                v as Idx
            }
            IndexFn::AffineMod { mul, add, modulus } => {
                ((i as i64) * mul + add).rem_euclid(*modulus as i64) as Idx
            }
            IndexFn::Ptr { field } => self.shared.read_ptr(*field, i),
            IndexFn::Compose(a, b) => {
                let mid = self.eval_index_fn(a, i, u64::MAX);
                self.eval_index_fn(b, mid, target_size)
            }
        }
    }
}

impl DataCtx for TaskCtx<'_> {
    fn read_f64(&mut self, a: AccessId, field: FieldId, i: Idx) -> f64 {
        self.check_access(a, i);
        // SAFETY: reads only race with writes to *other* elements (see
        // shared.rs module docs).
        unsafe { self.shared.read_f64(field, i) }
    }

    fn write_f64(&mut self, a: AccessId, field: FieldId, i: Idx, v: f64) {
        self.check_access(a, i);
        if let Some(own) = self.write_own {
            if !own.contains(i) {
                self.write_skips.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // SAFETY: centered write; element owned by exactly one task.
        unsafe { self.shared.write_f64(field, i, v) };
    }

    fn reduce_f64(&mut self, a: AccessId, field: FieldId, i: Idx, op: ReduceOp, v: f64) {
        let modes = self.modes;
        match &modes[a.0 as usize] {
            Mode::Plain => {
                self.check_access(a, i);
                // Centered or provably-disjoint reduction: in-place.
                // SAFETY: element owned by exactly one task.
                unsafe {
                    let cur = self.shared.read_f64(field, i);
                    self.shared.write_f64(field, i, op.apply(cur, v));
                }
            }
            Mode::Guarded => {
                if self.subregion(a).contains(i) {
                    self.guard_hits.fetch_add(1, Ordering::Relaxed);
                    // SAFETY: the guard partition is disjoint.
                    unsafe {
                        let cur = self.shared.read_f64(field, i);
                        self.shared.write_f64(field, i, op.apply(cur, v));
                    }
                } else {
                    self.guard_skips.fetch_add(1, Ordering::Relaxed);
                }
            }
            Mode::Buffered { buf_sets } => {
                self.check_access(a, i);
                self.buffer_reduce(a, field, i, op, v, &buf_sets[self.color]);
            }
            Mode::BufferedPrivate { private, buf_sets } => {
                self.check_access(a, i);
                if private.subregion(self.color).contains(i) {
                    // SAFETY: private sub-partition is disjoint.
                    unsafe {
                        let cur = self.shared.read_f64(field, i);
                        self.shared.write_f64(field, i, op.apply(cur, v));
                    }
                } else {
                    self.buffer_reduce(a, field, i, op, v, &buf_sets[self.color]);
                }
            }
        }
    }

    fn read_ptr(&mut self, a: AccessId, field: FieldId, i: Idx) -> Idx {
        self.check_access(a, i);
        self.shared.read_ptr(field, i)
    }

    fn eval_fn(&mut self, f: FnId, i: Idx) -> Idx {
        let nf = self.fns.get(f);
        let size = self.schema.region_size(nf.range);
        match &nf.def {
            FnDef::Index(func) => self.eval_index_fn(func, i, size),
            FnDef::Multi(_) => panic!("eval_fn on multi-valued function"),
        }
    }

    fn eval_multi(&mut self, a: AccessId, f: FnId, i: Idx, out: &mut Vec<Idx>) {
        self.check_access(a, i);
        let nf = self.fns.get(f);
        let size = self.schema.region_size(nf.range);
        match &nf.def {
            FnDef::Multi(MultiFn::RangeField { field }) => {
                let (s, e) = self.shared.read_range(*field, i);
                out.extend(s..e.min(size));
            }
            FnDef::Multi(MultiFn::Lift(func)) => out.push(self.eval_index_fn(func, i, size)),
            FnDef::Index(func) => out.push(self.eval_index_fn(func, i, size)),
        }
    }
}

impl TaskCtx<'_> {
    fn buffer_reduce(
        &mut self,
        a: AccessId,
        field: FieldId,
        i: Idx,
        op: ReduceOp,
        v: f64,
        set: &IndexSet,
    ) {
        let bi = self.buf_set_of_access[a.0 as usize].expect("buffered access");
        let buf = &mut self.local_bufs[bi];
        if buf.is_empty() {
            buf.resize(set.len() as usize, op.identity());
            let mut slot = self.buf_ops[bi].lock();
            if slot.is_none() {
                *slot = Some(op);
                *self.buf_fields[bi].lock() = Some(field);
            }
        }
        let rank = match set.rank(i) {
            Some(r) => r as usize,
            None => self.legality_violation(a, i),
        };
        buf[rank] = op.apply(buf[rank], v);
    }
}
