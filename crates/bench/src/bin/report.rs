//! Experiment-report aggregator.
//!
//! Reads any number of `partir-report-v1` envelopes (files produced by the
//! other bins' `--json --out` mode), validates each, and merges them into
//! one `BENCH_partir.json` keyed by experiment name, so a whole evaluation
//! run ships as a single machine-readable artifact and perf trajectories
//! diff across PRs.
//!
//! Usage:
//!   cargo run -p partir-bench --bin report -- [--out BENCH_partir.json] FILE...
//!
//! With no FILE arguments it reads one path per line from stdin (paths
//! are expected, not raw JSON). Duplicate experiments: the last file wins
//! (a rerun replaces the earlier result).

use partir_obs::json::Json;
use partir_obs::report;
use std::path::PathBuf;

fn main() {
    let mut out = PathBuf::from("BENCH_partir.json");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path argument");
                    std::process::exit(2);
                }));
            }
            _ => files.push(PathBuf::from(a)),
        }
    }
    if files.is_empty() {
        let mut buf = String::new();
        use std::io::Read;
        if std::io::stdin().read_to_string(&mut buf).is_ok() {
            files.extend(buf.lines().filter(|l| !l.trim().is_empty()).map(PathBuf::from));
        }
    }
    if files.is_empty() {
        eprintln!("no report files given (pass paths as arguments or on stdin)");
        std::process::exit(2);
    }

    // (experiment, envelope), last-wins per experiment.
    let mut merged: Vec<(String, Json)> = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let parsed = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let experiment = match report::validate_envelope(&parsed) {
            Ok(name) => name.to_string(),
            Err(e) => {
                eprintln!("{}: not a valid report: {e}", path.display());
                std::process::exit(1);
            }
        };
        merged.retain(|(name, _)| *name != experiment);
        merged.push((experiment, parsed));
    }

    // Deterministic artifact: experiments sorted by name, regardless of
    // the order the input files were listed in.
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    let mut experiments = Json::object();
    for (name, env) in &merged {
        experiments = experiments.with(name.clone(), env.clone());
    }
    let doc =
        report::envelope("aggregate").with("inputs", files.len()).with("experiments", experiments);
    let text = format!("{doc}\n");
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} ({} experiments: {})",
        out.display(),
        merged.len(),
        merged.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(", ")
    );
}
