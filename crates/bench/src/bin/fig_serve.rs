//! Solve-as-a-service benchmark: sustained solves/sec through the
//! `partir::Server` on a mixed corpus (the five paper applications at
//! several sizes and hint configurations), cold versus warm.
//!
//! The cold phase solves every distinct request once against a fresh
//! cache; the warm phase replays the whole corpus several times through
//! the concurrent worker pool, where every request must hit the
//! fingerprint-keyed `PlanCache`. The report records the hit rate,
//! p50/p99 plan-acquisition latency for both phases, warm throughput, and
//! the median cold/warm speedup, and every warm plan is checked
//! bit-identical to its cold counterpart by executing both.
//!
//! Run: `cargo run --release -p partir-bench --bin fig_serve`
//! JSON report: `... --bin fig_serve -- --json [--out PATH]`
//! CI gate: `... --bin fig_serve -- --assert` fails unless the warm hit
//! rate is 100% and warm acquisition is at least 10x faster than the
//! cold median.

use partir::prelude::*;
use partir::serve::{ServeConfig, ServeReply, Server};
use partir_apps::{circuit, miniaero, pennant, spmv, stencil};
use partir_bench::BenchArgs;
use partir_obs::json::Json;
use std::time::Instant;

/// Warm replays of the full corpus.
const WARM_ROUNDS: usize = 5;
/// The `--assert` gate: warm plan acquisition must beat the cold median
/// by at least this factor.
const MIN_WARM_SPEEDUP: f64 = 10.0;

struct Request {
    name: &'static str,
    program: Vec<Loop>,
    fns: FnTable,
    store: Store,
    hints: Hints,
    exts: ExtBindings,
    colors: usize,
}

impl Request {
    fn builder(&self) -> Partir {
        Partir::new(self.program.clone(), self.fns.clone(), self.store.schema().clone())
            .colors(self.colors)
            .hints(self.hints.clone())
            .externals(self.exts.clone())
    }
}

/// The mixed corpus: five applications, varied sizes and hint setups.
fn corpus() -> Vec<Request> {
    let mut out = Vec::new();
    let plain = |name, program, fns, store, colors| Request {
        name,
        program,
        fns,
        store,
        hints: Hints::new(),
        exts: ExtBindings::new(),
        colors,
    };

    let a = spmv::Spmv::generate(&spmv::SpmvParams { rows: 4096, halo: 2, band_shift: 0 });
    out.push(plain("spmv_4k", a.program, a.fns, a.store, 8));
    let a = spmv::Spmv::generate(&spmv::SpmvParams { rows: 8192, halo: 3, band_shift: 0 });
    out.push(plain("spmv_8k_halo3", a.program, a.fns, a.store, 8));

    let a = stencil::Stencil::generate(&stencil::StencilParams { nx: 64, ny: 64 });
    out.push(plain("stencil_64", a.program, a.fns, a.store, 8));
    let a = stencil::Stencil::generate(&stencil::StencilParams { nx: 96, ny: 64 });
    out.push(plain("stencil_96x64", a.program, a.fns, a.store, 8));

    let a = miniaero::MiniAero::generate(&miniaero::MiniAeroParams { nx: 6, ny: 6, nz: 6 });
    out.push(plain("miniaero_6", a.program, a.fns, a.store, 8));

    let a = circuit::Circuit::generate(&circuit::CircuitParams {
        clusters: 4,
        nodes_per_cluster: 200,
        wires_per_cluster: 800,
        cross_fraction: 0.2,
        cross_stride: None,
        seed: 7,
    });
    out.push(plain("circuit_auto", a.program, a.fns, a.store, 8));
    let a = circuit::Circuit::generate(&circuit::CircuitParams {
        clusters: 8,
        nodes_per_cluster: 400,
        wires_per_cluster: 800,
        ..circuit::CircuitParams::default()
    });
    let (hints, exts) = a.hint_setup(8);
    out.push(Request {
        name: "circuit_hinted",
        program: a.program,
        fns: a.fns,
        store: a.store,
        hints,
        exts,
        colors: 8,
    });

    let a = pennant::Pennant::generate(&pennant::PennantParams { pieces: 4, zw: 4, zy: 4 });
    out.push(plain("pennant_auto", a.program, a.fns, a.store, 4));
    let a = pennant::Pennant::generate(&pennant::PennantParams { pieces: 4, zw: 4, zy: 4 });
    let (hints, exts) = a.hint_setup(pennant::PennantConfig::Hint2);
    out.push(Request {
        name: "pennant_hint2",
        program: a.program,
        fns: a.fns,
        store: a.store,
        hints,
        exts,
        colors: 4,
    });

    out
}

fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

struct PhaseStats {
    p50_ns: u64,
    p99_ns: u64,
    median_ns: u64,
}

fn phase_stats(mut lat: Vec<u64>) -> PhaseStats {
    lat.sort_unstable();
    PhaseStats {
        p50_ns: percentile_ns(&lat, 0.50),
        p99_ns: percentile_ns(&lat, 0.99),
        median_ns: percentile_ns(&lat, 0.50),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let corpus = corpus();
    let server = Server::new(ServeConfig { workers: 4, queue_cap: 256, ..Default::default() });

    // Cold phase: every distinct request once; all must miss.
    let cold_wall = Instant::now();
    let cold: Vec<ServeReply> = corpus
        .iter()
        .map(|r| server.solve(r.builder()).unwrap_or_else(|e| panic!("{}: {e}", r.name)))
        .collect();
    let cold_wall_s = cold_wall.elapsed().as_secs_f64();
    assert!(cold.iter().all(|r| !r.plan.cache_hit()), "cold phase must miss");
    let cold_stats = phase_stats(cold.iter().map(|r| r.solve_ns).collect());

    // Warm phase: replay the whole corpus WARM_ROUNDS times concurrently.
    let warm_wall = Instant::now();
    let tickets: Vec<_> = (0..WARM_ROUNDS)
        .flat_map(|_| corpus.iter().map(|r| server.submit(r.builder()).expect("queue fits")))
        .collect();
    let warm: Vec<ServeReply> =
        tickets.into_iter().map(|t| t.wait().expect("warm request succeeds")).collect();
    let warm_wall_s = warm_wall.elapsed().as_secs_f64();
    let hits = warm.iter().filter(|r| r.plan.cache_hit()).count();
    let hit_rate = hits as f64 / warm.len() as f64;
    let warm_stats = phase_stats(warm.iter().map(|r| r.solve_ns).collect());
    let solves_per_sec = warm.len() as f64 / warm_wall_s;
    let speedup = cold_stats.median_ns as f64 / warm_stats.median_ns.max(1) as f64;

    // Bit-identity: each warm plan must execute exactly like its cold one.
    for (req, cold_reply) in corpus.iter().zip(&cold) {
        let warm_reply = warm
            .iter()
            .find(|w| w.plan.fingerprint() == cold_reply.plan.fingerprint())
            .unwrap_or_else(|| panic!("{}: no warm reply for the cold fingerprint", req.name));
        // Ranks backend: ghost exchange makes even relaxed plans (the
        // auto-solved Circuit) legal to execute.
        let run = Run::new().backend(Backend::Ranks(4));
        let mut from_cold = req.store.clone();
        let mut from_warm = req.store.clone();
        run.run(&cold_reply.plan, &mut from_cold)
            .unwrap_or_else(|e| panic!("{} cold run: {e}", req.name));
        run.run(&warm_reply.plan, &mut from_warm)
            .unwrap_or_else(|e| panic!("{} warm run: {e}", req.name));
        for f in 0..req.store.schema().num_fields() {
            let fid = partir::dpl::region::FieldId(f as u32);
            assert_eq!(
                from_cold.field_data(fid),
                from_warm.field_data(fid),
                "{}: warm plan diverged from cold on field {f}",
                req.name
            );
        }
    }

    let stats = server.cache_stats().expect("cache is healthy");

    let rows: Vec<Json> = corpus
        .iter()
        .zip(&cold)
        .map(|(r, reply)| {
            Json::object()
                .with("request", r.name)
                .with("fingerprint", reply.plan.fingerprint().to_string())
                .with("colors", r.colors)
                .with("cold_ms", ns_to_ms(reply.solve_ns))
        })
        .collect();

    let payload = Json::object()
        .with("corpus", rows)
        .with("workers", 4u64)
        .with("warm_rounds", WARM_ROUNDS)
        .with(
            "cold",
            Json::object()
                .with("solves", cold.len())
                .with("wall_s", cold_wall_s)
                .with("p50_ms", ns_to_ms(cold_stats.p50_ns))
                .with("p99_ms", ns_to_ms(cold_stats.p99_ns)),
        )
        .with(
            "warm",
            Json::object()
                .with("requests", warm.len())
                .with("wall_s", warm_wall_s)
                .with("hit_rate", hit_rate)
                .with("p50_ms", ns_to_ms(warm_stats.p50_ns))
                .with("p99_ms", ns_to_ms(warm_stats.p99_ns))
                .with("solves_per_sec", solves_per_sec),
        )
        .with("warm_speedup_median", speedup)
        .with("bit_identical", true)
        .with("cache", stats.to_json());

    args.emit("serve", payload, || {
        println!("serve: mixed corpus of {} requests, {WARM_ROUNDS} warm rounds", corpus.len());
        println!(
            "  cold: p50 {:8.3} ms   p99 {:8.3} ms   ({} solves in {:.2}s)",
            ns_to_ms(cold_stats.p50_ns),
            ns_to_ms(cold_stats.p99_ns),
            cold.len(),
            cold_wall_s,
        );
        println!(
            "  warm: p50 {:8.3} ms   p99 {:8.3} ms   hit rate {:5.1}%   {:8.1} solves/s",
            ns_to_ms(warm_stats.p50_ns),
            ns_to_ms(warm_stats.p99_ns),
            hit_rate * 100.0,
            solves_per_sec,
        );
        println!("  warm speedup (median cold / median warm): {speedup:.1}x");
        println!(
            "  cache: {} entries, {} bytes, {} hits / {} misses, {} evictions",
            stats.entries, stats.bytes, stats.hits, stats.misses, stats.evictions
        );
        println!("  bit-identity: every warm plan matched its cold solve");
    });

    if args.assert_gates {
        let mut failures = Vec::new();
        if hit_rate < 1.0 {
            failures.push(format!(
                "warm hit rate {:.1}% (need 100%): {} of {} requests missed",
                hit_rate * 100.0,
                warm.len() - hits,
                warm.len()
            ));
        }
        if speedup < MIN_WARM_SPEEDUP {
            failures.push(format!(
                "warm acquisition only {speedup:.1}x faster than cold median \
                 (need {MIN_WARM_SPEEDUP}x): cold {:.3} ms vs warm {:.3} ms",
                ns_to_ms(cold_stats.median_ns),
                ns_to_ms(warm_stats.median_ns),
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("serve gate FAILED: {f}");
            }
            std::process::exit(1);
        }
        println!(
            "serve gate passed: 100% warm hits, {speedup:.1}x over cold median \
             (threshold {MIN_WARM_SPEEDUP}x)"
        );
    }
}
