//! Interning microbenchmark: solve+unify+eval wall time on the five
//! benchmark apps, with the partition-evaluation step measured both ways —
//! through the hash-consed `ExprId` IR (shared arena, memoized evaluator)
//! and through the pre-interning tree semantics (one fresh evaluator per
//! partition expression, deep-copied results, no cross-expression
//! sharing). The per-app speedup quantifies what the interned IR saves at
//! runtime; the pipeline column tracks the compile-side cost across PRs
//! via `BENCH_partir.json`.
//!
//! Run: `cargo run --release -p partir-bench --bin interning`
//! JSON report: `... --bin interning -- --json [--out PATH]`

use partir::Partir;
use partir_apps::{circuit, miniaero, pennant, spmv, stencil};
use partir_bench::BenchArgs;
use partir_core::eval::{Evaluator, ExtBindings};
use partir_core::pipeline::{auto_parallelize, Hints, Options, ParallelPlan};
use partir_dpl::func::FnTable;
use partir_dpl::partition::Partition;
use partir_dpl::region::Store;
use partir_ir::ast::Loop;
use partir_obs::json::Json;
use std::time::Instant;

const EVAL_COLORS: usize = 8;
const SAMPLES: usize = 15;

struct Case {
    name: &'static str,
    program: Vec<Loop>,
    fns: FnTable,
    store: Store,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    let a = spmv::Spmv::generate(&spmv::SpmvParams {
        rows: 100_000,
        halo: 2,
        ..spmv::SpmvParams::default()
    });
    out.push(Case { name: "SpMV", program: a.program, fns: a.fns, store: a.store });
    let a = stencil::Stencil::generate(&stencil::StencilParams { nx: 256, ny: 256 });
    out.push(Case { name: "Stencil", program: a.program, fns: a.fns, store: a.store });
    let a = circuit::Circuit::generate(&circuit::CircuitParams::default());
    out.push(Case { name: "Circuit", program: a.program, fns: a.fns, store: a.store });
    let a = miniaero::MiniAero::generate(&miniaero::MiniAeroParams::default());
    out.push(Case { name: "MiniAero", program: a.program, fns: a.fns, store: a.store });
    let a = pennant::Pennant::generate(&pennant::PennantParams::default());
    out.push(Case { name: "PENNANT", program: a.program, fns: a.fns, store: a.store });
    out
}

/// Median wall time of `f` over [`SAMPLES`] runs, in milliseconds.
fn median_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Pre-interning evaluation semantics: every partition expression is
/// evaluated as a standalone tree by a fresh evaluator, and the result is
/// deep-copied (the old evaluator cloned `Partition`s out of its memo).
fn eval_tree_baseline(
    plan: &ParallelPlan,
    store: &Store,
    fns: &FnTable,
    exts: &ExtBindings,
) -> Vec<Partition> {
    plan.partition_exprs
        .iter()
        .map(|e| {
            let mut ev = Evaluator::new(store, fns, EVAL_COLORS, exts);
            Partition::clone(&ev.eval(e))
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse();
    let exts = ExtBindings::new();
    let mut rows = Json::array();
    let mut human = String::new();
    human.push_str(&format!(
        "# Interning microbench: solve+unify vs eval (median of {SAMPLES} runs)\n"
    ));
    human.push_str(&format!(
        "{:<10} {:>14} {:>16} {:>14} {:>10}\n",
        "app", "pipeline_ms", "eval_interned_ms", "eval_tree_ms", "speedup"
    ));

    for case in cases() {
        let schema = case.store.schema().clone();
        // The timed loop calls the core pipeline directly: the metric tracked
        // across PRs is solve+unify+rewrite time, not the builder's input
        // clones and validation.
        let pipeline_ms = median_ms(|| {
            auto_parallelize(&case.program, &case.fns, &schema, &Hints::new(), Options::default())
                .unwrap()
        });
        let plan = Partir::new(case.program.clone(), case.fns.clone(), schema)
            .build()
            .unwrap()
            .into_plan();
        let eval_interned_ms =
            median_ms(|| plan.evaluate(&case.store, &case.fns, EVAL_COLORS, &exts));
        let eval_tree_ms = median_ms(|| eval_tree_baseline(&plan, &case.store, &case.fns, &exts));
        let speedup = if eval_interned_ms > 0.0 { eval_tree_ms / eval_interned_ms } else { 0.0 };
        let (_, eval_stats) = plan.evaluate_with_stats(&case.store, &case.fns, EVAL_COLORS, &exts);
        let (interned, dedup_hits) = plan.system.arena.counters();

        human.push_str(&format!(
            "{:<10} {:>14.3} {:>16.3} {:>14.3} {:>9.2}x\n",
            case.name, pipeline_ms, eval_interned_ms, eval_tree_ms, speedup
        ));
        rows = rows.push(
            Json::object()
                .with("name", case.name)
                .with("pipeline_ms", pipeline_ms)
                .with("eval_interned_ms", eval_interned_ms)
                .with("eval_tree_ms", eval_tree_ms)
                .with("eval_speedup", speedup)
                .with("eval_cache_hits", eval_stats.cache_hits)
                .with("partitions_built", eval_stats.partitions_built)
                .with("exprs_interned", interned)
                .with("dedup_hits", dedup_hits)
                .with("subst_cache_hits", plan.solution.stats.subst_cache_hits)
                .with("lemma_memo_hits", plan.solution.stats.lemma_memo_hits),
        );
    }

    let payload =
        Json::object().with("samples", SAMPLES).with("eval_colors", EVAL_COLORS).with("apps", rows);
    args.emit("interning", payload, || print!("{human}"));
}
