//! Figure 14d reproduction: Circuit weak scaling, Manual vs Auto+Hint vs
//! Auto.
//!
//! Paper: 1e5 wires/node. Without the user constraint, Auto matches the
//! hand-optimized version only up to 8 nodes — the generator puts all
//! shared nodes in the first 1% of the node region, so the `equal`
//! partition makes one task a communication bottleneck. With the constraint
//! (`DISJ(pn_private ∪ pn_shared) ∧ COMP(..., rn)`), Auto+Hint stays within
//! 5% of Manual at 256 nodes and *beats* it up to 64 nodes thanks to tight
//! private sub-partitions (the manual code buffers the whole shared block).
//!
//! Run: `cargo run --release -p partir-bench --bin fig14d`
//! JSON report: `... --bin fig14d -- --json [--out PATH]`

use partir_apps::circuit::fig14d_series;
use partir_apps::support::{render_series, FIG14_NODES};
use partir_bench::{series_json, BenchArgs};
use partir_obs::json::Json;

fn main() {
    let args = BenchArgs::parse();
    let nodes_per_cluster: u64 = std::env::var("CIRCUIT_NODES_PER_CLUSTER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000);
    let wires_per_cluster: u64 = std::env::var("CIRCUIT_WIRES_PER_CLUSTER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16000);
    let series = fig14d_series(nodes_per_cluster, wires_per_cluster, &FIG14_NODES);
    let payload = Json::object()
        .with("nodes_per_cluster", nodes_per_cluster)
        .with("wires_per_cluster", wires_per_cluster)
        .with("series", series_json(&series));
    args.emit("fig14d", payload, || {
        println!(
            "{}",
            render_series(
                &format!(
                    "Figure 14d: Circuit weak scaling (wires/s per node; {} wires/node)",
                    wires_per_cluster
                ),
                &series
            )
        );
        for s in &series {
            println!(
                "{:<12} efficiency at {} nodes: {:.1}%",
                s.label,
                s.points.last().unwrap().nodes,
                s.efficiency() * 100.0
            );
        }
        println!("(paper: Auto matches ≤8 nodes then bottlenecks on the shared-node subregion;");
        println!(" Auto+Hint within 5% of Manual at 256, ahead of Manual ≤64 nodes)");
    });
}
