//! Figure 14a reproduction: SpMV weak scaling (Auto).
//!
//! The paper runs 0.4e9 non-zeros per node on 1–256 Piz Daint nodes and
//! reports 99% parallel efficiency at 256 nodes. The simulator reproduces
//! the curve shape at a scaled-down per-node size (set `SPMV_ROWS_PER_NODE`
//! to override).
//!
//! Run: `cargo run --release -p partir-bench --bin fig14a`
//! JSON report: `... --bin fig14a -- --json [--out PATH]`

use partir_apps::spmv::{fig14a_faults_series, fig14a_series};
use partir_apps::support::{render_series, FIG14_NODES};
use partir_bench::{series_json, BenchArgs};
use partir_obs::json::Json;
use partir_runtime::sim::FailureModel;

fn main() {
    let args = BenchArgs::parse();
    let rows_per_node: u64 =
        std::env::var("SPMV_ROWS_PER_NODE").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000);
    let series = vec![
        fig14a_series(rows_per_node, &FIG14_NODES),
        fig14a_faults_series(rows_per_node, &FIG14_NODES, FailureModel::commodity()),
    ];
    let payload =
        Json::object().with("rows_per_node", rows_per_node).with("series", series_json(&series));
    args.emit("fig14a", payload, || {
        println!(
            "{}",
            render_series(
                &format!(
                    "Figure 14a: SpMV weak scaling (throughput/node, non-zeros/s; {} rows/node)",
                    rows_per_node
                ),
                &series
            )
        );
        println!(
            "parallel efficiency at {} nodes: {:.1}% (paper: 99%); with node failures: {:.1}%",
            series[0].points.last().unwrap().nodes,
            series[0].efficiency() * 100.0,
            series[1].efficiency() * 100.0
        );
    });
}
