//! Table 1 reproduction: compilation-time breakdown of the
//! auto-parallelization pass for every benchmark program.
//!
//! The paper reports constraint inference, constraint solver, code rewrite,
//! and binary generation times. Binary generation is rustc's job here (not
//! part of the contribution), so this harness reports the three phases the
//! paper's pass owns plus the number of auto-parallelized loops — the rows
//! that measure the contribution's cost. On top of the paper's rows we
//! print the solver internals (backtracks, lemma applications, unification
//! merges) that the explanation traces record.
//!
//! Run: `cargo run --release -p partir-bench --bin table1`
//! JSON report: `... --bin table1 -- --json [--out PATH]`

use partir::Partir;
use partir_apps::{circuit, miniaero, pennant, spmv, stencil};
use partir_bench::{plan_json, BenchArgs};
use partir_core::eval::ExtBindings;
use partir_core::pipeline::{EvalStats, ParallelPlan, Timings};
use partir_core::solve::SolveStats;
use partir_dpl::func::FnTable;
use partir_dpl::region::Store;
use partir_obs::json::Json;
use std::time::Duration;

/// Launch width used for the partition-evaluation column (the evaluator's
/// memo behavior is independent of the width; this just has to be real).
const EVAL_COLORS: usize = 8;

struct Row {
    name: &'static str,
    timings: Timings,
    loops: usize,
    partitions: usize,
    solve: SolveStats,
    unify_merged: usize,
    unify_accepted: u64,
    interned: u64,
    dedup_hits: u64,
    eval: EvalStats,
    json: Json,
}

fn ms(d: Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

fn row_of(
    name: &'static str,
    plan: ParallelPlan,
    loops: usize,
    fns: &FnTable,
    store: &Store,
) -> Row {
    let (_, eval) = plan.evaluate_with_stats(store, fns, EVAL_COLORS, &ExtBindings::new());
    let (interned, dedup_hits) = plan.system.arena.counters();
    let json = plan_json(name, &plan, loops, fns).with(
        "eval",
        Json::object()
            .with("cache_hits", eval.cache_hits)
            .with("partitions_built", eval.partitions_built),
    );
    Row {
        name,
        timings: plan.timings,
        loops,
        partitions: plan.num_partitions(),
        solve: plan.solution.stats,
        unify_merged: plan.unified.merged,
        unify_accepted: plan.unified.stats.merges_accepted,
        interned,
        dedup_hits,
        eval,
        json,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();

    let app = spmv::Spmv::generate(&spmv::SpmvParams {
        rows: 100_000,
        halo: 2,
        ..spmv::SpmvParams::default()
    });
    rows.push(row_of("SpMV", app.auto_plan(), app.program.len(), &app.fns, &app.store));

    let app = stencil::Stencil::generate(&stencil::StencilParams { nx: 256, ny: 256 });
    rows.push(row_of("Stencil", app.auto_plan(), app.program.len(), &app.fns, &app.store));

    let app = circuit::Circuit::generate(&circuit::CircuitParams::default());
    rows.push(row_of("Circuit", app.auto_plan(), app.program.len(), &app.fns, &app.store));

    let app = miniaero::MiniAero::generate(&miniaero::MiniAeroParams::default());
    rows.push(row_of("MiniAero", app.auto_plan(), app.program.len(), &app.fns, &app.store));

    let app = pennant::Pennant::generate(&pennant::PennantParams::default());
    let plan = Partir::new(app.program.clone(), app.fns.clone(), app.store.schema().clone())
        .build()
        .expect("pennant")
        .into_plan();
    rows.push(row_of("PENNANT", plan, app.program.len(), &app.fns, &app.store));

    let mut apps = Json::array();
    for r in &rows {
        apps = apps.push(r.json.clone());
    }
    let payload = Json::object().with("apps", apps);

    args.emit("table1", payload, || print_human(&rows));
}

fn print_human(rows: &[Row]) {
    println!("# Table 1: compilation time breakdown (auto-parallelization pass)");
    print!("{:<22}", "");
    for r in rows {
        print!("{:>12}", r.name);
    }
    println!();
    let col = |f: &dyn Fn(&Row) -> String| -> Vec<String> { rows.iter().map(f).collect() };
    let print_row = |label: &str, vals: Vec<String>| {
        print!("{label:<22}");
        for v in vals {
            print!("{v:>12}");
        }
        println!();
    };
    print_row("Constraint inference", col(&|r| ms(r.timings.inference)));
    print_row("Constraint solver", col(&|r| ms(r.timings.solver)));
    print_row("Code rewrite", col(&|r| ms(r.timings.rewrite)));
    print_row("Total", col(&|r| ms(r.timings.inference + r.timings.solver + r.timings.rewrite)));
    print_row("Num. parallel loops", col(&|r| r.loops.to_string()));
    print_row("Num. partitions", col(&|r| r.partitions.to_string()));
    print_row("Solver backtracks", col(&|r| r.solve.backtracks.to_string()));
    print_row("Lemma applications", col(&|r| r.solve.lemma_applications.to_string()));
    print_row("Unify merges", col(&|r| format!("{}/{}", r.unify_accepted, r.unify_merged)));
    print_row("Exprs interned", col(&|r| r.interned.to_string()));
    print_row("Intern dedup hits", col(&|r| r.dedup_hits.to_string()));
    print_row("Subst cache hits", col(&|r| r.solve.subst_cache_hits.to_string()));
    print_row("Lemma memo hits", col(&|r| r.solve.lemma_memo_hits.to_string()));
    print_row("Eval cache hits", col(&|r| r.eval.cache_hits.to_string()));
    println!();
    println!("(Binary generation is rustc's cost, not part of the pass; the paper's");
    println!(" corresponding rows measured the Regent compiler back-end.");
    println!(" Unify merges: accepted merge steps / symbols eliminated.)");
}
