//! Table 1 reproduction: compilation-time breakdown of the
//! auto-parallelization pass for every benchmark program.
//!
//! The paper reports constraint inference, constraint solver, code rewrite,
//! and binary generation times. Binary generation is rustc's job here (not
//! part of the contribution), so this harness reports the three phases the
//! paper's pass owns plus the number of auto-parallelized loops — the rows
//! that measure the contribution's cost.
//!
//! Run: `cargo run --release -p partir-bench --bin table1`

use partir_apps::{circuit, miniaero, pennant, spmv, stencil};
use partir_core::pipeline::{auto_parallelize, Hints, Options, ParallelPlan, Timings};
use std::time::Duration;

struct Row {
    name: &'static str,
    timings: Timings,
    loops: usize,
    partitions: usize,
}

fn ms(d: Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

fn plan_of(name: &'static str, plan: ParallelPlan, loops: usize) -> Row {
    Row { name, timings: plan.timings, loops, partitions: plan.num_partitions() }
}

fn main() {
    let mut rows = Vec::new();

    let app = spmv::Spmv::generate(&spmv::SpmvParams { rows: 100_000, halo: 2 });
    rows.push(plan_of("SpMV", app.auto_plan(), app.program.len()));

    let app = stencil::Stencil::generate(&stencil::StencilParams { nx: 256, ny: 256 });
    rows.push(plan_of("Stencil", app.auto_plan(), app.program.len()));

    let app = circuit::Circuit::generate(&circuit::CircuitParams::default());
    rows.push(plan_of("Circuit", app.auto_plan(), app.program.len()));

    let app = miniaero::MiniAero::generate(&miniaero::MiniAeroParams::default());
    rows.push(plan_of("MiniAero", app.auto_plan(), app.program.len()));

    let app = pennant::Pennant::generate(&pennant::PennantParams::default());
    let plan = auto_parallelize(
        &app.program,
        &app.fns,
        app.store.schema(),
        &Hints::new(),
        Options::default(),
    )
    .expect("pennant");
    rows.push(Row {
        name: "PENNANT",
        timings: plan.timings,
        loops: app.program.len(),
        partitions: plan.num_partitions(),
    });

    println!("# Table 1: compilation time breakdown (auto-parallelization pass)");
    println!(
        "{:<22}{:>12}{:>12}{:>12}{:>12}{:>12}{:>14}",
        "", "SpMV", "Stencil", "Circuit", "MiniAero", "PENNANT", ""
    );
    let col = |f: &dyn Fn(&Row) -> String| -> Vec<String> { rows.iter().map(f).collect() };
    let print_row = |label: &str, vals: Vec<String>| {
        print!("{label:<22}");
        for v in vals {
            print!("{v:>12}");
        }
        println!();
    };
    print_row("Constraint inference", col(&|r| ms(r.timings.inference)));
    print_row("Constraint solver", col(&|r| ms(r.timings.solver)));
    print_row("Code rewrite", col(&|r| ms(r.timings.rewrite)));
    print_row(
        "Total",
        col(&|r| ms(r.timings.inference + r.timings.solver + r.timings.rewrite)),
    );
    print_row("Num. parallel loops", col(&|r| r.loops.to_string()));
    print_row("Num. partitions", col(&|r| r.partitions.to_string()));
    println!();
    println!("(Binary generation is rustc's cost, not part of the pass; the paper's");
    println!(" corresponding rows measured the Regent compiler back-end.)");
    let _ = rows;
}
