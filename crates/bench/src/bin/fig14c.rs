//! Figure 14c reproduction: MiniAero weak scaling, Manual vs Auto.
//!
//! Paper: 2.1e6 cells/node; both versions reach ~98% parallel efficiency at
//! 256 nodes with Auto ~2% slower on average (sequential mesh numbering
//! fragments the auto version's face subregions). The auto version's flux
//! reductions are relaxed (Section 5.1) — no reduction buffers at all.
//!
//! Run: `cargo run --release -p partir-bench --bin fig14c`
//! JSON report: `... --bin fig14c -- --json [--out PATH]`
//! Ablation: `MINIAERO_NO_RELAX=1 cargo run ... --bin fig14c` disables the
//! relaxation to show the buffered fallback.

use partir::Partir;
use partir_apps::miniaero::{fig14c_series, MiniAero, MiniAeroParams};
use partir_apps::support::{
    render_series, sim_spec_from_plan, LoopWeights, ScalePoint, ScaleSeries, SimSummary,
    FIG14_NODES,
};
use partir_bench::{series_json, BenchArgs};
use partir_core::optimize::RelaxPolicy;
use partir_obs::json::Json;
use partir_runtime::sim::{simulate, MachineModel};

fn main() {
    let args = BenchArgs::parse();
    let nx: u64 = std::env::var("MINIAERO_NX").ok().and_then(|v| v.parse().ok()).unwrap_or(32);
    let ny: u64 = std::env::var("MINIAERO_NY").ok().and_then(|v| v.parse().ok()).unwrap_or(32);
    let nz_per_node: u64 =
        std::env::var("MINIAERO_NZ_PER_NODE").ok().and_then(|v| v.parse().ok()).unwrap_or(32);

    let mut series = fig14c_series(nx, ny, nz_per_node, &FIG14_NODES);

    // Ablation: relaxation off (buffered reductions).
    if std::env::var("MINIAERO_NO_RELAX").is_ok() {
        let mut points = Vec::new();
        for &n in FIG14_NODES.iter() {
            let app = MiniAero::generate(&MiniAeroParams { nx, ny, nz: nz_per_node * n as u64 });
            let session =
                Partir::new(app.program.clone(), app.fns.clone(), app.store.schema().clone())
                    .relax(RelaxPolicy::Off)
                    .colors(n)
                    .build()
                    .expect("miniaero no-relax");
            let parts = session.evaluate(&app.store);
            let weights = LoopWeights(vec![12.0, 4.0, 4.0]);
            let spec =
                sim_spec_from_plan(&app.program, session.plan(), &parts, &app.store, &weights);
            let machine = MachineModel::gpu_cluster(n);
            let res = simulate(&spec, &machine).expect("sim spec is well-formed");
            points.push(ScalePoint {
                nodes: n,
                throughput_per_node: res.throughput_per_node(app.n_cells as f64, n),
                sim: SimSummary::from_result(&res, &machine),
            });
        }
        series.push(ScaleSeries { label: "Auto(no-relax)".into(), points });
    }

    let payload = Json::object()
        .with("nx", nx)
        .with("ny", ny)
        .with("nz_per_node", nz_per_node)
        .with("series", series_json(&series));
    args.emit("fig14c", payload, || {
        println!(
            "{}",
            render_series(
                &format!(
                    "Figure 14c: MiniAero weak scaling (cells/s per node; {}x{}x{} cells/node)",
                    nx, ny, nz_per_node
                ),
                &series
            )
        );
        for s in &series {
            println!(
                "{:<16} efficiency at {} nodes: {:.1}%",
                s.label,
                s.points.last().unwrap().nodes,
                s.efficiency() * 100.0
            );
        }
        println!("(paper: both 98%, Auto ~2% slower on average; relaxation eliminates buffers)");
    });
}
