//! Distributed-backend scaling: ghost exchange vs replication, with
//! cross-rank timelines and predicted-vs-measured accounting.
//!
//! Runs all five benchmark applications on the rank-sharded SPMD backend
//! at increasing rank counts (strong scaling: fixed problem, more ranks),
//! verifies each point bit-identically against the sequential interpreter
//! with legality checking on, and reports:
//!
//! * the exchange-set traffic the constraint solution derives, vs the
//!   bytes a replicate-everything runtime would ship;
//! * the `dist_profile` critical-path breakdown per epoch (compute /
//!   exchange-wait / pack-unpack / legality / barrier-skew), computed from
//!   per-rank timelines;
//! * per-`(src, dst)` predicted-vs-measured bytes and messages, run in
//!   strict mode — any pair where the mailboxes moved different traffic
//!   than the `ExchangePlan` predicts aborts the harness.
//!
//! Run: `cargo run --release -p partir-bench --bin fig_dist`
//! JSON report: `... --bin fig_dist -- --json [--out PATH]`
//! Chrome trace: `... --bin fig_dist -- --trace-out trace.json` (load in
//! Perfetto / `chrome://tracing`; one process per app×rank-count combo,
//! one thread per rank).
//! Overhead gate: `... --bin fig_dist -- --check-obs-skew` re-runs the
//! largest Stencil point with metrics on vs off and fails when the median
//! walltime skew exceeds `PARTIR_OBS_SKEW_MAX_PCT` (default 5%).
//! Scaling gate: `... --bin fig_dist -- --assert-scaling [--max-ratio X]`
//! fails when the largest rank count's median wall-clock exceeds 1-rank
//! by more than the allowed ratio on Stencil and SpMV (the CI perf gate;
//! `PARTIR_SCALING_MAX_RATIO` overrides the parallelism-aware default —
//! strict `1.0` on multi-core hosts, relaxed on single-core ones where
//! thread-per-rank SPMD cannot beat one rank).
//! Rank counts: `PARTIR_RANKS=2,4,8` overrides the default `1,2,4,8`.
//! Fault tolerance: `... --bin fig_dist -- --fault-seed N` crashes a
//! seeded rank mid-program in every app at the largest rank count (with
//! mild seeded message loss and duplication on top), verifies the
//! survivors finish bit-identical with migration bounded by the lost
//! rank's owned shard, and emits a `dist_recovery` section: recovery
//! wall-clock, bytes migrated vs a full re-shard, and the fault-free
//! checkpoint overhead at the Young/Daly interval — the latter gated
//! under `PARTIR_CKPT_OVERHEAD_MAX_PCT` (default 5%;
//! `PARTIR_DIST_MTBF_S` sets the assumed mean time between failures,
//! default one hour).
//! Placement: `... --bin fig_dist -- --placement block|cost|compare`.
//! `block`/`cost` pick the owner-mapping policy for the normal scaling
//! table (via `PARTIR_PLACEMENT`, so the env path is exercised);
//! `compare` runs only the placement axis — block vs cost-driven on
//! placement-adversarial inputs (SpMV with an antipodal band shift,
//! Circuit with strided cross-cluster wires) over-decomposed to
//! 4 colors per rank at 4 and 8 ranks, asserting both policies stay
//! bit-identical to the sequential interpreter under strict volume
//! accounting, that cost-driven never predicts (or measures) more
//! cross-rank ghost bytes than block on any app and strictly fewer on
//! SpMV and Circuit, and that the refinement solve time stays under 5%
//! of the end-to-end plan time — emitting a `placement` report section.

use partir::core::exchange::derive_exchange;
use partir::core::placement::{
    cost_driven_assignment, CommGraph, MachineModel, PlacementPolicy, PlacementReport,
};
use partir::{Backend, Partir, RunReport};
use partir_apps::circuit::{Circuit, CircuitParams};
use partir_apps::miniaero::{MiniAero, MiniAeroParams};
use partir_apps::pennant::{Pennant, PennantParams};
use partir_apps::{spmv, stencil};
use partir_bench::{BenchArgs, PlacementMode};
use partir_dpl::func::FnTable;
use partir_dpl::region::{FieldData, FieldId, Store};
use partir_ir::ast::Loop;
use partir_ir::interp::run_program_seq;
use partir_obs::json::Json;
use partir_obs::trace::chrome_trace_doc;
use partir_obs::{MemorySink, ObsConfig};
use partir_runtime::dist::{CheckpointPolicy, DistFaultPlan, DistReport, RankCrash};
use std::time::Instant;

struct Case {
    name: &'static str,
    program: Vec<Loop>,
    fns: FnTable,
    store: Store,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    let a = stencil::Stencil::generate(&stencil::StencilParams { nx: 256, ny: 256 });
    out.push(Case { name: "Stencil", program: a.program, fns: a.fns, store: a.store });
    let a = spmv::Spmv::generate(&spmv::SpmvParams {
        rows: 100_000,
        halo: 2,
        ..spmv::SpmvParams::default()
    });
    out.push(Case { name: "SpMV", program: a.program, fns: a.fns, store: a.store });
    let a = Circuit::generate(&CircuitParams {
        clusters: 4,
        nodes_per_cluster: 400,
        wires_per_cluster: 1_600,
        cross_fraction: 0.2,
        cross_stride: None,
        seed: 7,
    });
    out.push(Case { name: "Circuit", program: a.program, fns: a.fns, store: a.store });
    let a = MiniAero::generate(&MiniAeroParams { nx: 8, ny: 8, nz: 8 });
    out.push(Case { name: "MiniAero", program: a.program, fns: a.fns, store: a.store });
    let a = Pennant::generate(&PennantParams { pieces: 4, zw: 8, zy: 8 });
    out.push(Case { name: "PENNANT", program: a.program, fns: a.fns, store: a.store });
    out
}

fn session_for(case: &Case, ranks: usize, obs: ObsConfig) -> partir::Session {
    Partir::new(case.program.clone(), case.fns.clone(), case.store.schema().clone())
        .backend(Backend::Ranks(ranks))
        .colors(ranks.max(4))
        .obs(obs)
        .build()
        .unwrap_or_else(|e| panic!("{} auto-parallelizes: {e}", case.name))
}

/// One scaling point: the distributed report plus the observability
/// payloads derived from its timeline and the timed strong-scaling
/// measurement.
struct Point {
    rep: DistReport,
    profile: Json,
    pairs: Json,
    /// Median wall-clock of the timed repetitions (observability off).
    wall_ns: u64,
    /// Chrome `trace_event` objects for `--trace-out` (empty otherwise).
    events: Vec<Json>,
}

/// Median wall-clock of `REPS` runs with all observability off — the
/// strong-scaling number proper. The session (plan solve + exchange
/// derivation) is built once and amortized, exactly how a production
/// caller would run repeated epochs.
fn time_point(case: &Case, ranks: usize) -> u64 {
    const REPS: usize = 5;
    let mut session = session_for(case, ranks, ObsConfig::disabled());
    let mut times: Vec<u64> = (0..REPS)
        .map(|_| {
            let mut par = case.store.clone();
            let t0 = Instant::now();
            session.run(&mut par).unwrap_or_else(|e| panic!("timed run: {e}"));
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[REPS / 2]
}

fn run_point(case: &Case, seq: &Store, ranks: usize, pid: u64, want_trace: bool) -> Point {
    let obs = ObsConfig { timeline: true, strict_volume: true, ..ObsConfig::disabled() };
    let mut session = session_for(case, ranks, obs);
    let mut par = case.store.clone();
    let report =
        session.run(&mut par).unwrap_or_else(|e| panic!("{} on {ranks} ranks: {e}", case.name));
    let schema = case.store.schema();
    for f in 0..schema.num_fields() {
        let fid = FieldId(f as u32);
        if let FieldData::F64(sv) = seq.field_data(fid) {
            let FieldData::F64(pv) = par.field_data(fid) else { unreachable!() };
            assert_eq!(sv, pv, "{}: field {fid:?} diverged at {ranks} ranks", case.name);
        }
    }
    let rep = match report {
        RunReport::Ranks(r) => r,
        RunReport::Threads(_) => unreachable!("rank backend requested"),
    };
    // Release builds must ride the plan-level proof: zero per-element
    // checks, non-zero containment facts. (Debug builds deliberately keep
    // the per-element path as a second line of defense.)
    if cfg!(not(debug_assertions)) {
        assert_eq!(
            rep.legality_checks, 0,
            "{} at {ranks} ranks: release path fell back to per-element legality",
            case.name
        );
        assert!(
            rep.plan_proved > 0,
            "{} at {ranks} ranks: plan-level legality proof established no facts",
            case.name
        );
    }

    let trace = session.trace().expect("timeline collection was requested");
    trace
        .validate()
        .unwrap_or_else(|e| panic!("{} at {ranks} ranks: malformed timeline: {e}", case.name));
    let profile = session.dist_profile().expect("profile derives from the timeline");
    assert!(
        profile.coverage() >= 0.95,
        "{} at {ranks} ranks: critical-path categories cover only {:.1}% of wall-clock",
        case.name,
        profile.coverage() * 100.0
    );
    // Strict mode already errored on any mismatch; assert the reported
    // deltas agree.
    let volume = session.volume_accounting().expect("volume accounting present");
    assert!(volume.is_clean(), "{} at {ranks} ranks: dirty volume accounting", case.name);

    let events = if want_trace {
        trace.chrome_trace_events(&format!("{} @ {ranks} ranks", case.name), pid)
    } else {
        Vec::new()
    };
    let wall_ns = time_point(case, ranks);
    Point { rep, profile: profile.to_json(), pairs: volume.to_json(), wall_ns, events }
}

/// Obs-overhead gate (`--check-obs-skew`): median walltime of the largest
/// Stencil point with metrics routed to an in-memory sink vs everything
/// off. The sharded atomic counters must keep the skew under
/// `PARTIR_OBS_SKEW_MAX_PCT` (default 5%).
fn check_obs_skew(case: &Case, ranks: usize) {
    const REPS: usize = 5;
    let max_pct: f64 = std::env::var("PARTIR_OBS_SKEW_MAX_PCT")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(5.0);

    // Metrics on/off is process-global sink state; the sessions themselves
    // are configured identically (ObsConfig::disabled() never uninstalls a
    // programmatic sink).
    let median_walltime = || -> f64 {
        let mut times: Vec<f64> = (0..REPS)
            .map(|_| {
                let mut session = session_for(case, ranks, ObsConfig::disabled());
                let mut par = case.store.clone();
                let t0 = Instant::now();
                session.run(&mut par).unwrap_or_else(|e| panic!("skew run: {e}"));
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[REPS / 2]
    };

    let off = median_walltime();
    let sink = MemorySink::new();
    partir_obs::install_sink(sink.clone(), false, true);
    let on = median_walltime();
    partir_obs::uninstall_sink();
    assert!(!sink.take().is_empty(), "metrics sink saw no counter events");

    let skew_pct = (on - off) / off * 100.0;
    eprintln!(
        "obs skew: {} at {ranks} ranks: off {:.1} ms, metrics-on {:.1} ms ({skew_pct:+.2}%)",
        case.name,
        off * 1e3,
        on * 1e3
    );
    assert!(
        skew_pct <= max_pct,
        "metrics overhead {skew_pct:.2}% exceeds the {max_pct:.1}% budget"
    );
}

/// Median wall-clock (and last report) of `reps` fault-free runs at a
/// given checkpoint cadence, observability off.
fn time_checkpointed(
    case: &Case,
    ranks: usize,
    ckpt: Option<CheckpointPolicy>,
    reps: usize,
) -> (u64, DistReport) {
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let mut b =
            Partir::new(case.program.clone(), case.fns.clone(), case.store.schema().clone())
                .backend(Backend::Ranks(ranks))
                .colors(ranks.max(4))
                .obs(ObsConfig::disabled());
        if let Some(p) = ckpt {
            b = b.checkpoint(p);
        }
        let mut session = b.build().unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let mut par = case.store.clone();
        let t0 = Instant::now();
        let report = session.run(&mut par).unwrap_or_else(|e| panic!("fault-mode run: {e}"));
        walls.push(t0.elapsed().as_nanos() as u64);
        last = Some(match report {
            RunReport::Ranks(r) => r,
            RunReport::Threads(_) => unreachable!("rank backend requested"),
        });
    }
    walls.sort_unstable();
    (walls[reps / 2], last.unwrap())
}

/// `--fault-seed` measurement for one app: prices fault-free checkpointing
/// at the Young/Daly interval (gated), then crashes a seeded rank
/// mid-program — with mild seeded message loss and duplication on top —
/// and reports what recovery cost and moved.
fn run_fault_point(case: &Case, ranks: usize, seed: u64) -> Json {
    const REPS: usize = 5;
    let n_epochs = (case.program.len() as u64).max(1);
    let max_pct: f64 = std::env::var("PARTIR_CKPT_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(5.0);
    let mtbf_s: f64 = std::env::var("PARTIR_DIST_MTBF_S")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(3600.0);

    // Fault-free baseline, then an every-epoch probe to price a snapshot;
    // Young/Daly turns (epoch cost, snapshot cost, MTBF) into the
    // checkpoint interval the gate measures at. For programs far shorter
    // than the interval the optimum is genuinely "no checkpoint within
    // this horizon" — the gated run then prices exactly that policy (the
    // every-epoch overhead stays in the report as the worst case).
    let (base_wall, _) = time_checkpointed(case, ranks, None, REPS);
    let (every_wall, probe) =
        time_checkpointed(case, ranks, Some(CheckpointPolicy::every(1)), REPS);
    let every_pct = (every_wall as f64 - base_wall as f64) / base_wall as f64 * 100.0;
    let epoch_cost_s = base_wall as f64 / 1e9 / n_epochs as f64;
    let snap_cost_s = if probe.checkpoints > 0 {
        // Ranks snapshot in parallel: the per-epoch cost is one rank's
        // average snapshot time, not the sum across ranks.
        probe.checkpoint_ns as f64 / 1e9 / probe.checkpoints as f64
    } else {
        0.0
    };
    let policy = CheckpointPolicy::young_daly(epoch_cost_s, snap_cost_s, mtbf_s);
    let (ckpt_wall, ckpt_rep) = time_checkpointed(case, ranks, Some(policy), REPS);
    // The gated number is the snapshot time the ranks themselves clocked,
    // on the critical path (ranks snapshot concurrently, so the per-rank
    // average — sum / ranks — is what the run's wall-clock absorbs).
    // Wall-clock A/B deltas cannot resolve a 5% budget on a noisy shared
    // host; the protocol's own timer can, and it is what the budget is
    // about. The wall delta stays in the log as a sanity cross-check.
    let overhead_pct = ckpt_rep.checkpoint_ns as f64 / ranks as f64 / ckpt_wall as f64 * 100.0;
    eprintln!(
        "ckpt overhead: {} at {ranks} ranks: bare {:.2} ms, every-{}-epochs {:.2} ms \
         ({} snapshots, {overhead_pct:.2}% of wall on the snapshot path; \
         wall deltas: gated {:+.2}%, every-epoch {every_pct:+.2}%)",
        case.name,
        base_wall as f64 / 1e6,
        policy.interval_epochs,
        ckpt_wall as f64 / 1e6,
        ckpt_rep.checkpoints,
        (ckpt_wall as f64 - base_wall as f64) / base_wall as f64 * 100.0,
    );
    assert!(
        overhead_pct <= max_pct,
        "{}: Young/Daly checkpointing costs {overhead_pct:.2}% fault-free \
         (budget {max_pct:.1}%)",
        case.name
    );

    // The crash proper: seeded rank and epoch, a 2% drop/dup storm on
    // top, every-epoch checkpoints so the rollback is minimal, strict
    // volume accounting across the recovery.
    let crash_rank = (seed as usize) % ranks;
    let crash_epoch = (seed / 7) % n_epochs;
    let fault = DistFaultPlan {
        drop_rate: 0.02,
        dup_rate: 0.02,
        crash: Some(RankCrash { rank: crash_rank, epoch: crash_epoch, silent: false }),
        ..DistFaultPlan::quiescent(seed)
    };
    let mut seq = case.store.clone();
    run_program_seq(&case.program, &mut seq, &case.fns);
    let schema = case.store.schema().clone();
    let mut session = Partir::new(case.program.clone(), case.fns.clone(), schema.clone())
        .backend(Backend::Ranks(ranks))
        .colors(ranks.max(4))
        .check_legality(true)
        .obs(ObsConfig { strict_volume: true, ..ObsConfig::disabled() })
        .dist_fault(fault)
        .checkpoint(CheckpointPolicy::every(1))
        .build()
        .unwrap_or_else(|e| panic!("{}: {e}", case.name));
    let parts = session.evaluate(&case.store);
    let xplan = derive_exchange(session.plan(), &parts, &schema, ranks).unwrap();
    let dead_owned = xplan.owned_field_bytes(&schema, crash_rank);
    // A recovery scheme with no migration bound would re-shard everything:
    // the full owned footprint is the yardstick `bytes_migrated` beats.
    let full_reshard: u64 = (0..ranks).map(|r| xplan.owned_field_bytes(&schema, r)).sum();

    let mut par = case.store.clone();
    let t0 = Instant::now();
    let report = session
        .run(&mut par)
        .unwrap_or_else(|e| panic!("{} at {ranks} ranks survives the crash: {e}", case.name));
    let fault_wall = t0.elapsed().as_nanos() as u64;
    let rep = match report {
        RunReport::Ranks(r) => r,
        RunReport::Threads(_) => unreachable!("rank backend requested"),
    };
    assert_eq!(rep.recoveries, 1, "{}: exactly one recovery", case.name);
    assert!(
        rep.bytes_migrated <= dead_owned,
        "{}: migrated {} B but the lost rank owned only {dead_owned} B",
        case.name,
        rep.bytes_migrated
    );
    assert!(rep.plan_proved > 0, "{}: the evacuated plan was not re-proved", case.name);
    if cfg!(not(debug_assertions)) {
        assert_eq!(
            rep.legality_checks, 0,
            "{}: release recovery ran per-element checks",
            case.name
        );
    }
    for f in 0..schema.num_fields() {
        let fid = FieldId(f as u32);
        if let FieldData::F64(sv) = seq.field_data(fid) {
            let FieldData::F64(pv) = par.field_data(fid) else { unreachable!() };
            assert_eq!(sv, pv, "{}: field {fid:?} diverged after recovery", case.name);
        }
    }
    eprintln!(
        "recovery: {} at {ranks} ranks: rank {crash_rank} died at epoch {crash_epoch}; \
         recovered in {:.2} ms migrating {} B of {} B ({:.1}% of a full re-shard)",
        case.name,
        rep.recovery_ns as f64 / 1e6,
        rep.bytes_migrated,
        full_reshard,
        rep.bytes_migrated as f64 / full_reshard as f64 * 100.0,
    );

    Json::object()
        .with("name", case.name)
        .with("ranks", ranks as u64)
        .with("crash_rank", crash_rank as u64)
        .with("crash_epoch", crash_epoch)
        .with("recoveries", rep.recoveries)
        .with("recovery_ns", rep.recovery_ns)
        .with("bytes_migrated", rep.bytes_migrated)
        .with("lost_rank_owned_bytes", dead_owned)
        .with("full_reshard_bytes", full_reshard)
        .with("migration_fraction", rep.bytes_migrated as f64 / full_reshard as f64)
        .with("retransmits", rep.retransmits)
        .with("duplicates", rep.duplicates)
        .with("faulted_wall_ns", fault_wall)
        .with("fault_free_wall_ns", base_wall)
        .with("young_daly_interval_epochs", policy.interval_epochs)
        .with("checkpoint_overhead_pct", overhead_pct)
        .with("every_epoch_overhead_pct", every_pct)
        .with("checkpoints", probe.checkpoints)
        .with("checkpoint_bytes", probe.checkpoint_bytes)
        .with("bit_identical", true)
}

/// Placement-adversarial inputs for the `--placement compare` axis.
///
/// Each strict-win app is tuned so that a contiguous block owner mapping is
/// the wrong answer at `4·ranks` colors: SpMV's band is renumbered to
/// center on the antipodal row (color `c` only talks to color `c + C/2`,
/// which block pins on a distant rank), and Circuit's cross wires all
/// target the cluster `ranks` strides away. Stencil, MiniAero and PENNANT
/// keep their natural locality — block is already near-optimal for them, so
/// they pin the "cost-driven never regresses below block" guarantee rather
/// than a strict win.
fn placement_cases(ranks: usize) -> Vec<Case> {
    let mut out = Vec::new();
    let a = stencil::Stencil::generate(&stencil::StencilParams { nx: 512, ny: 512 });
    out.push(Case { name: "Stencil", program: a.program, fns: a.fns, store: a.store });
    let rows = 400_000;
    let a = spmv::Spmv::generate(&spmv::SpmvParams { rows, halo: 2, band_shift: rows / 2 });
    out.push(Case { name: "SpMV", program: a.program, fns: a.fns, store: a.store });
    let a = Circuit::generate(&CircuitParams {
        clusters: 2 * ranks,
        nodes_per_cluster: 400,
        wires_per_cluster: 800,
        cross_fraction: 0.6,
        cross_stride: Some(ranks as u64),
        seed: 7,
    });
    out.push(Case { name: "Circuit", program: a.program, fns: a.fns, store: a.store });
    let a = MiniAero::generate(&MiniAeroParams { nx: 8, ny: 8, nz: 8 });
    out.push(Case { name: "MiniAero", program: a.program, fns: a.fns, store: a.store });
    let a = Pennant::generate(&PennantParams { pieces: 4, zw: 8, zy: 8 });
    out.push(Case { name: "PENNANT", program: a.program, fns: a.fns, store: a.store });
    out
}

/// Steady-state cost of the placement solver on the case's real
/// communication graph: the minimum over repetitions, the standard
/// estimate for a µs-scale cost. A single in-situ solve right after a
/// cache-hostile execution phase measures mostly the machine's cache
/// state (~3× steady); the solve-time gate bounds the *solver's* cost,
/// so it divides this number by the one-shot plan wall. The in-situ
/// `solve_ns` stays in the report unmodified.
fn steady_solve_ns(case: &Case, ranks: usize) -> u64 {
    let session = Partir::new(case.program.clone(), case.fns.clone(), case.store.schema().clone())
        .backend(Backend::Ranks(ranks))
        .colors(4 * ranks)
        .build()
        .unwrap_or_else(|e| panic!("{} (steady solve): {e}", case.name));
    let parts = session.evaluate(&case.store);
    let graph = CommGraph::build(session.plan(), &parts, case.store.schema())
        .unwrap_or_else(|e| panic!("{} (steady solve) graph: {e}", case.name));
    let machine = MachineModel::homogeneous(ranks);
    let mut best = u64::MAX;
    for _ in 0..64 {
        let t = std::time::Instant::now();
        std::hint::black_box(cost_driven_assignment(&graph, &machine, 1.10, 8, ranks));
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// One policy run on the placement axis: over-decomposed to `4·ranks`
/// colors, strict volume accounting, verified bit-identical against `seq`.
/// Returns the measured report, the placement report, and the wall time of
/// the session build (the entire planning pipeline — inference, constraint
/// solve, rewrite, partitioning, placement) the solve-time gate divides by.
fn run_placement_session(
    case: &Case,
    seq: &Store,
    ranks: usize,
    policy: PlacementPolicy,
) -> (DistReport, PlacementReport, u64) {
    let label = policy.name();
    // Planning is timed at µs granularity and a cold first pass through
    // the planning and placement paths costs ~3× steady state in cache
    // misses alone. One unmeasured warm-up session (built *and* run —
    // placement happens inside `run`) keeps the measured timings about
    // the solver, not the process's cache state.
    {
        let mut warm =
            Partir::new(case.program.clone(), case.fns.clone(), case.store.schema().clone())
                .backend(Backend::Ranks(ranks))
                .colors(4 * ranks)
                .placement(policy.clone())
                .build()
                .unwrap_or_else(|e| panic!("{} ({label}) warm-up: {e}", case.name));
        let mut scratch = case.store.clone();
        warm.run(&mut scratch)
            .unwrap_or_else(|e| panic!("{} ({label}) warm-up on {ranks} ranks: {e}", case.name));
    }
    let t_build = std::time::Instant::now();
    let mut session =
        Partir::new(case.program.clone(), case.fns.clone(), case.store.schema().clone())
            .backend(Backend::Ranks(ranks))
            .colors(4 * ranks)
            .placement(policy)
            .obs(ObsConfig { strict_volume: true, ..ObsConfig::disabled() })
            .build()
            .unwrap_or_else(|e| panic!("{} ({label}): {e}", case.name));
    let build_ns = t_build.elapsed().as_nanos() as u64;
    let mut par = case.store.clone();
    let report = session
        .run(&mut par)
        .unwrap_or_else(|e| panic!("{} ({label}) on {ranks} ranks: {e}", case.name));
    let schema = case.store.schema();
    for f in 0..schema.num_fields() {
        let fid = FieldId(f as u32);
        if let FieldData::F64(sv) = seq.field_data(fid) {
            let FieldData::F64(pv) = par.field_data(fid) else { unreachable!() };
            assert_eq!(sv, pv, "{} ({label}): field {fid:?} diverged at {ranks} ranks", case.name);
        }
    }
    // Strict mode already aborted on any predicted-vs-measured mismatch;
    // the accounting must also read clean after the fact.
    let volume = session.volume_accounting().expect("strict volume accounting present");
    assert!(volume.is_clean(), "{} ({label}): dirty volume accounting", case.name);
    let rep = match report {
        RunReport::Ranks(r) => r,
        RunReport::Threads(_) => unreachable!("rank backend requested"),
    };
    let placement = session.placement_report().expect("rank backend records its placement").clone();
    (rep, placement, build_ns)
}

/// The `--placement compare` axis: block vs cost-driven per app at 4 and
/// 8 ranks, with the byte-reduction, bit-identity and solve-time gates.
fn run_placement_compare(args: &BenchArgs) {
    let max_solve_pct = 5.0;
    let mut entries = Json::array();
    let mut human = format!(
        "\n{:<9} {:>5} {:>6} {:>13} {:>13} {:>8} {:>6} {:>6} {:>9} {:>8}\n",
        "app",
        "ranks",
        "colors",
        "block_bytes",
        "cost_bytes",
        "reduct%",
        "passes",
        "moves",
        "solve_us",
        "solve%"
    );
    for ranks in [4usize, 8] {
        for case in placement_cases(ranks) {
            let mut seq = case.store.clone();
            run_program_seq(&case.program, &mut seq, &case.fns);
            let (block_rep, block_pl, _) =
                run_placement_session(&case, &seq, ranks, PlacementPolicy::Block);
            // Placement is deterministic, so bytes agree across repetitions;
            // only the µs-scale timings wobble. Three reps and the median
            // ratio bound the scheduler's influence on a single run without
            // letting an outlier in either direction decide the gate.
            let mut reps: Vec<(DistReport, PlacementReport, u64, f64)> = (0..3)
                .map(|_| {
                    let (rep, pl, build) =
                        run_placement_session(&case, &seq, ranks, PlacementPolicy::CostDriven);
                    // The session plans in two phases: `build` (inference,
                    // constraint solve, rewrite, partition evaluation) and
                    // the placement stage inside `run` — end-to-end plan
                    // time is their sum.
                    let pct = pl.solve_ns as f64 / (build + pl.place_ns).max(1) as f64 * 100.0;
                    (rep, pl, build, pct)
                })
                .collect();
            reps.sort_by(|a, b| a.3.partial_cmp(&b.3).unwrap_or(std::cmp::Ordering::Equal));
            let (cost_rep, cost_pl, build_ns, _) = reps.swap_remove(1);
            let steady_ns = steady_solve_ns(&case, ranks);
            let solve_pct = steady_ns as f64 / (build_ns + cost_pl.place_ns).max(1) as f64 * 100.0;

            // Both candidates derive the same block baseline; the two runs
            // must agree on what block predicts.
            assert_eq!(
                cost_pl.predicted_block_bytes, block_pl.predicted_bytes,
                "{} at {ranks} ranks: block baselines disagree across runs",
                case.name
            );
            // The tentpole gate: cost-driven never predicts — or, under
            // strict accounting, measures — more cross-rank ghost bytes
            // than block, and strictly fewer on the adversarial apps.
            assert!(
                cost_pl.predicted_bytes <= block_pl.predicted_bytes,
                "{} at {ranks} ranks: cost-driven predicts {} B vs block {} B",
                case.name,
                cost_pl.predicted_bytes,
                block_pl.predicted_bytes
            );
            assert!(
                cost_rep.bytes_sent <= block_rep.bytes_sent,
                "{} at {ranks} ranks: cost-driven measured {} B vs block {} B",
                case.name,
                cost_rep.bytes_sent,
                block_rep.bytes_sent
            );
            if matches!(case.name, "SpMV" | "Circuit") {
                assert!(
                    cost_pl.predicted_bytes < block_pl.predicted_bytes
                        && cost_rep.bytes_sent < block_rep.bytes_sent,
                    "{} at {ranks} ranks: cost-driven must strictly beat block \
                     (predicted {} vs {} B, measured {} vs {} B)",
                    case.name,
                    cost_pl.predicted_bytes,
                    block_pl.predicted_bytes,
                    cost_rep.bytes_sent,
                    block_rep.bytes_sent
                );
            }
            // Solve-time gate: seeding + refinement must stay a rounding
            // error next to the rest of planning. The denominator is the
            // whole session build — inference, constraint solve, rewrite,
            // partitioning and the full placement stage (graph build and
            // the rank-granular candidate derivations included). The
            // numerator is the steady-state solver cost: the one-shot
            // in-situ sample runs on caches the surrounding execution just
            // evicted and lands ~3x above what the solver actually costs,
            // so gating on it would bound scheduler noise, not the solver.
            eprintln!(
                "placement gate: {} at {ranks} ranks: block {} B -> cost {} B; \
                 build {:.2} ms, place {:.1} us (graph {:.1} us, solve {:.1} us \
                 in-situ / {:.1} us steady, {solve_pct:.2}% of build), \
                 {} passes / {} moves",
                case.name,
                block_pl.predicted_bytes,
                cost_pl.predicted_bytes,
                build_ns as f64 / 1e6,
                cost_pl.place_ns as f64 / 1e3,
                cost_pl.graph_ns as f64 / 1e3,
                cost_pl.solve_ns as f64 / 1e3,
                steady_ns as f64 / 1e3,
                cost_pl.passes,
                cost_pl.moves,
            );
            assert!(
                solve_pct < max_solve_pct,
                "{} at {ranks} ranks: placement refinement took {solve_pct:.2}% of the \
                 end-to-end session build time (budget {max_solve_pct}%)",
                case.name
            );

            let reduction = |block: u64, cost: u64| {
                if block > 0 {
                    block.saturating_sub(cost) as f64 / block as f64
                } else {
                    0.0
                }
            };
            let pred_red = reduction(block_pl.predicted_bytes, cost_pl.predicted_bytes);
            let meas_red = reduction(block_rep.bytes_sent, cost_rep.bytes_sent);
            human.push_str(&format!(
                "{:<9} {:>5} {:>6} {:>13} {:>13} {:>7.1}% {:>6} {:>6} {:>9.1} {:>7.2}%\n",
                case.name,
                ranks,
                4 * ranks,
                block_pl.predicted_bytes,
                cost_pl.predicted_bytes,
                pred_red * 100.0,
                cost_pl.passes,
                cost_pl.moves,
                steady_ns as f64 / 1e3,
                solve_pct,
            ));
            entries = entries.push(
                cost_pl
                    .to_json()
                    .with("name", case.name)
                    .with("ranks", ranks as u64)
                    .with("measured_block_bytes", block_rep.bytes_sent)
                    .with("measured_bytes", cost_rep.bytes_sent)
                    .with("predicted_reduction", pred_red)
                    .with("measured_reduction", meas_red)
                    .with("build_ns", build_ns)
                    .with("solve_steady_ns", steady_ns)
                    .with("solve_pct_of_build", solve_pct)
                    .with("bit_identical", true),
            );
        }
    }
    let payload = Json::object()
        .with("mode", "compare")
        .with("solve_budget_pct", max_solve_pct)
        .with("placement", entries);
    args.emit("fig_dist", payload, || {
        println!("# Placement axis: block vs cost-driven owner mapping");
        println!("# (both policies bit-identical to the sequential interpreter under");
        println!("#  strict volume accounting; bytes are exact per-pass predictions,");
        println!("#  measured bytes match them by construction)");
        print!("{human}");
    });
}

fn main() {
    let args = BenchArgs::parse();
    if args.placement == Some(PlacementMode::Compare) {
        run_placement_compare(&args);
        return;
    }
    match args.placement {
        // The env route, not the typed builder route, deliberately: the
        // normal table then exercises `PARTIR_PLACEMENT` end to end.
        Some(PlacementMode::Block) => std::env::set_var("PARTIR_PLACEMENT", "block"),
        Some(PlacementMode::Cost) => std::env::set_var("PARTIR_PLACEMENT", "cost"),
        _ => {}
    }
    let mut ranks = partir_obs::config::ranks_env();
    if ranks.is_empty() {
        ranks = vec![1, 2, 4, 8];
    }

    let mut apps = Json::array();
    let mut human = String::new();
    let mut chrome_events: Vec<Json> = Vec::new();
    let mut pid = 0u64;
    // Per app: the (ranks, median wall_ns) series, for the scaling gate.
    let mut walls: Vec<(&'static str, Vec<(usize, u64)>)> = Vec::new();
    for case in cases() {
        let mut seq = case.store.clone();
        run_program_seq(&case.program, &mut seq, &case.fns);

        human.push_str(&format!(
            "\n{}\n{:<7} {:>7} {:>9} {:>13} {:>13} {:>9} {:>9} {:>9} {:>10} {:>8}\n",
            case.name,
            "ranks",
            "tasks",
            "messages",
            "ghost_bytes",
            "repl_bytes",
            "ratio",
            "wait%",
            "skew%",
            "wall_ms",
            "speedup"
        ));
        let mut points = Json::array();
        let mut series: Vec<(usize, u64)> = Vec::new();
        for &r in &ranks {
            pid += 1;
            let point = run_point(&case, &seq, r, pid, args.trace_out.is_some());
            let rep = &point.rep;
            series.push((r, point.wall_ns));
            // Speedup vs the smallest rank count in the series (1 by
            // default — true strong-scaling baseline).
            let base = series[0].1;
            let speedup =
                if point.wall_ns > 0 { base as f64 / point.wall_ns as f64 } else { f64::INFINITY };
            if r > 1 {
                assert!(
                    rep.bytes_sent < rep.replication_bytes,
                    "{}: ghost exchange ({} B) must beat replication ({} B) at {r} ranks",
                    case.name,
                    rep.bytes_sent,
                    rep.replication_bytes
                );
            }
            let ratio = if rep.bytes_sent > 0 {
                rep.replication_bytes as f64 / rep.bytes_sent as f64
            } else {
                f64::INFINITY
            };
            let pct = |part: Option<&Json>| -> f64 {
                let wall = point.profile.get("totals").and_then(|t| t.get("wall_ns"));
                match (part.and_then(Json::as_f64), wall.and_then(Json::as_f64)) {
                    (Some(p), Some(w)) if w > 0.0 => p / w * 100.0,
                    _ => 0.0,
                }
            };
            let totals = point.profile.get("totals");
            human.push_str(&format!(
                "{:<7} {:>7} {:>9} {:>13} {:>13} {:>8.0}x {:>8.1} {:>8.1} {:>10.2} {:>7.2}x\n",
                r,
                rep.tasks_run,
                rep.messages,
                rep.bytes_sent,
                rep.replication_bytes,
                ratio,
                pct(totals.and_then(|t| t.get("exchange_wait_ns"))),
                pct(totals.and_then(|t| t.get("barrier_skew_ns"))),
                point.wall_ns as f64 / 1e6,
                speedup,
            ));
            points = points.push(
                rep.to_json()
                    .with("bit_identical", true)
                    .with("wall_ns", point.wall_ns)
                    .with("speedup", speedup)
                    .with("dist_profile", point.profile)
                    .with("pairs", point.pairs),
            );
            chrome_events.extend(point.events);
        }
        walls.push((case.name, series));
        apps = apps.push(Json::object().with("name", case.name).with("points", points));
    }

    if let Some(path) = &args.trace_out {
        let doc = chrome_trace_doc(chrome_events);
        match std::fs::write(path, format!("{doc}\n")) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if args.check_obs_skew {
        let cs = cases();
        // Stencil: the densest exchange pattern.
        check_obs_skew(&cs[0], ranks.iter().copied().max().unwrap_or(4));
    }

    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if args.assert_scaling {
        // CI perf gate: the largest rank count must not lose wall-clock
        // against the smallest on the scaling-critical apps. The default
        // bound is parallelism-aware: on a multi-core host threads-as-ranks
        // genuinely parallelize so we demand strict improvement (<= 1.0);
        // on a single core the ranks time-slice and only overlap can help,
        // so the bound just caps the protocol overhead.
        let max_ratio = args
            .max_ratio
            .or_else(partir_obs::config::scaling_max_ratio_env)
            .unwrap_or(if host_parallelism >= 2 { 1.0 } else { 2.0 });
        for (name, series) in &walls {
            if !matches!(*name, "Stencil" | "SpMV") {
                continue;
            }
            let (r0, w0) = series[0];
            let &(rn, wn) = series.last().unwrap();
            if rn == r0 || w0 == 0 {
                continue;
            }
            let scale = wn as f64 / w0 as f64;
            eprintln!(
                "scaling gate: {name}: {rn}-rank wall {:.2} ms vs {r0}-rank {:.2} ms \
                 (ratio {scale:.3}, allowed {max_ratio:.3}, host parallelism {host_parallelism})",
                wn as f64 / 1e6,
                w0 as f64 / 1e6,
            );
            assert!(
                scale <= max_ratio,
                "{name}: {rn}-rank wall-clock is {scale:.3}x the {r0}-rank baseline \
                 (allowed {max_ratio:.3}) — the rank backend stopped scaling"
            );
        }
    }

    let mut dist_recovery: Option<Json> = None;
    if let Some(seed) = args.fault_seed {
        // Crashes need survivors: at least 2 ranks, measured at the
        // largest point of the sweep.
        let r = ranks.iter().copied().max().unwrap_or(4).max(2);
        let mut arr = Json::array();
        for case in cases() {
            arr = arr.push(run_fault_point(&case, r, seed));
        }
        dist_recovery = Some(arr);
    }

    let mut ranks_json = Json::array();
    for &r in &ranks {
        ranks_json = ranks_json.push(r as u64);
    }
    let mut payload = Json::object()
        .with("ranks", ranks_json)
        .with("host_parallelism", host_parallelism as u64)
        .with("apps", apps);
    if let Some(rec) = dist_recovery {
        payload = payload.with("fault_seed", args.fault_seed.unwrap()).with("dist_recovery", rec);
    }
    args.emit("fig_dist", payload, || {
        println!("# Distributed backend: constraint-derived ghost exchange vs replication");
        println!("# (every point verified bit-identical to the sequential interpreter,");
        println!("#  legality checking on, strict predicted-vs-measured accounting;");
        println!("#  wait% / skew% from the per-epoch critical-path profile)");
        print!("{human}");
    });
}
