//! Distributed-backend scaling: ghost exchange vs replication.
//!
//! Runs Stencil and SpMV on the rank-sharded SPMD backend at increasing
//! rank counts (strong scaling: fixed problem, more ranks), verifies each
//! point bit-identically against the sequential interpreter with legality
//! checking on, and reports the exchange-set traffic the constraint
//! solution derives. The headline number is ghost bytes vs the bytes a
//! replicate-everything runtime would ship: the constraint-derived
//! exchange moves only each rank's preimage/image footprint, so the ratio
//! collapses by orders of magnitude.
//!
//! Run: `cargo run --release -p partir-bench --bin fig_dist`
//! JSON report: `... --bin fig_dist -- --json [--out PATH]`
//! Rank counts: `PARTIR_RANKS=2,4,8` overrides the default `1,2,4,8`.

use partir::{Backend, Partir, RunReport};
use partir_apps::{spmv, stencil};
use partir_bench::BenchArgs;
use partir_dpl::func::FnTable;
use partir_dpl::region::{FieldId, Store};
use partir_ir::ast::Loop;
use partir_ir::interp::run_program_seq;
use partir_obs::json::Json;
use partir_runtime::dist::DistReport;

struct Case {
    name: &'static str,
    program: Vec<Loop>,
    fns: FnTable,
    store: Store,
    /// Field whose contents must match the sequential interpreter.
    check: FieldId,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    let a = stencil::Stencil::generate(&stencil::StencilParams { nx: 256, ny: 256 });
    out.push(Case {
        name: "Stencil",
        program: a.program,
        fns: a.fns,
        store: a.store,
        check: a.f_out,
    });
    let a = spmv::Spmv::generate(&spmv::SpmvParams { rows: 100_000, halo: 2 });
    out.push(Case { name: "SpMV", program: a.program, fns: a.fns, store: a.store, check: a.yv });
    out
}

fn run_point(case: &Case, seq: &Store, ranks: usize) -> DistReport {
    let mut session =
        Partir::new(case.program.clone(), case.fns.clone(), case.store.schema().clone())
            .backend(Backend::Ranks(ranks))
            .build()
            .unwrap_or_else(|e| panic!("{} auto-parallelizes: {e}", case.name));
    let mut par = case.store.clone();
    let report =
        session.run(&mut par).unwrap_or_else(|e| panic!("{} on {ranks} ranks: {e}", case.name));
    assert_eq!(
        seq.f64s(case.check),
        par.f64s(case.check),
        "{} diverged from sequential at {ranks} ranks",
        case.name
    );
    match report {
        RunReport::Ranks(r) => r,
        RunReport::Threads(_) => unreachable!("rank backend requested"),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let mut ranks = partir_obs::config::ranks_env();
    if ranks.is_empty() {
        ranks = vec![1, 2, 4, 8];
    }

    let mut apps = Json::array();
    let mut human = String::new();
    for case in cases() {
        let mut seq = case.store.clone();
        run_program_seq(&case.program, &mut seq, &case.fns);

        human.push_str(&format!(
            "\n{}\n{:<7} {:>7} {:>9} {:>13} {:>13} {:>9}\n",
            case.name, "ranks", "tasks", "messages", "ghost_bytes", "repl_bytes", "ratio"
        ));
        let mut points = Json::array();
        for &r in &ranks {
            let rep = run_point(&case, &seq, r);
            if r > 1 {
                assert!(
                    rep.bytes_sent < rep.replication_bytes,
                    "{}: ghost exchange ({} B) must beat replication ({} B) at {r} ranks",
                    case.name,
                    rep.bytes_sent,
                    rep.replication_bytes
                );
            }
            let ratio = if rep.bytes_sent > 0 {
                rep.replication_bytes as f64 / rep.bytes_sent as f64
            } else {
                f64::INFINITY
            };
            human.push_str(&format!(
                "{:<7} {:>7} {:>9} {:>13} {:>13} {:>8.0}x\n",
                r, rep.tasks_run, rep.messages, rep.bytes_sent, rep.replication_bytes, ratio
            ));
            points = points.push(rep.to_json().with("bit_identical", true));
        }
        apps = apps.push(Json::object().with("name", case.name).with("points", points));
    }

    let mut ranks_json = Json::array();
    for &r in &ranks {
        ranks_json = ranks_json.push(r as u64);
    }
    let payload = Json::object().with("ranks", ranks_json).with("apps", apps);
    args.emit("fig_dist", payload, || {
        println!("# Distributed backend: constraint-derived ghost exchange vs replication");
        println!("# (every point verified bit-identical to the sequential interpreter,");
        println!("#  legality checking on)");
        print!("{human}");
    });
}
