//! Figure 14e reproduction: PENNANT weak scaling, Manual vs Auto+Hint2 vs
//! Auto+Hint1 vs Auto.
//!
//! Paper: ~1.8e6 zones/node. Auto keeps up only to 4 nodes (shared points
//! live in the initial entries of the point region, so `equal` partitions
//! bottleneck). Hint1 (the point partitioning as an external constraint)
//! matches Manual within 6% up to 32 nodes, then struggles — the
//! solver-derived partitions carry runtime-metadata cost the hand-optimized
//! partitions don't. Hint2 (reusing the side/zone partitions, the recursive
//! side-neighbor invariants, and the private-point sub-partition) shows no
//! noticeable difference from Manual.
//!
//! Run: `cargo run --release -p partir-bench --bin fig14e`
//! JSON report: `... --bin fig14e -- --json [--out PATH]`

use partir_apps::pennant::fig14e_series;
use partir_apps::support::{render_series, FIG14_NODES};
use partir_bench::{series_json, BenchArgs};
use partir_obs::json::Json;

fn main() {
    let args = BenchArgs::parse();
    let zw: u64 = std::env::var("PENNANT_ZW").ok().and_then(|v| v.parse().ok()).unwrap_or(24);
    let zy: u64 = std::env::var("PENNANT_ZY").ok().and_then(|v| v.parse().ok()).unwrap_or(96);
    let series = fig14e_series(zw, zy, &FIG14_NODES);
    let payload = Json::object().with("zw", zw).with("zy", zy).with("series", series_json(&series));
    args.emit("fig14e", payload, || {
        println!(
            "{}",
            render_series(
                &format!(
                    "Figure 14e: PENNANT weak scaling (zones/s per node; {}x{} zones/node)",
                    zw, zy
                ),
                &series
            )
        );
        for s in &series {
            println!(
                "{:<12} efficiency at {} nodes: {:.1}%",
                s.label,
                s.points.last().unwrap().nodes,
                s.efficiency() * 100.0
            );
        }
        println!("(paper: Auto drops after 4 nodes; Hint1 within 6% to 32 then degrades;");
        println!(" Hint2 indistinguishable from Manual)");
    });
}
