//! Figure 14b reproduction: Stencil weak scaling, Manual vs Auto.
//!
//! Paper: 0.9e9 points/node; Manual reaches 98% parallel efficiency at 256
//! nodes, Auto 93%, with Auto ~3% slower on average because the manual
//! version consolidates halo exchanges into one transfer per direction.
//!
//! Run: `cargo run --release -p partir-bench --bin fig14b`
//! JSON report: `... --bin fig14b -- --json [--out PATH]`

use partir_apps::stencil::fig14b_series;
use partir_apps::support::{render_series, FIG14_NODES};
use partir_bench::{series_json, BenchArgs};
use partir_obs::json::Json;

fn main() {
    let args = BenchArgs::parse();
    let nx: u64 = std::env::var("STENCIL_NX").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
    let rows_per_node: u64 =
        std::env::var("STENCIL_ROWS_PER_NODE").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
    let series = fig14b_series(nx, rows_per_node, &FIG14_NODES);
    let payload = Json::object()
        .with("nx", nx)
        .with("rows_per_node", rows_per_node)
        .with("series", series_json(&series));
    args.emit("fig14b", payload, || {
        println!(
            "{}",
            render_series(
                &format!(
                    "Figure 14b: Stencil weak scaling (points/s per node; {}x{} points/node)",
                    nx, rows_per_node
                ),
                &series
            )
        );
        for s in &series {
            println!(
                "{:<10} efficiency at {} nodes: {:.1}%",
                s.label,
                s.points.last().unwrap().nodes,
                s.efficiency() * 100.0
            );
        }
        println!("(paper: Manual 98%, Auto 93%, Auto ~3% slower on average)");
    });
}
