//! Benchmark harness crate; see the bin targets and benches.
//!
//! The bin targets share this module's report plumbing: every harness
//! accepts `--json [--out PATH]` and emits a `partir-report-v1` envelope
//! (see `partir_obs::report`) instead of the human tables, so experiment
//! results are machine-readable and diffable across PRs.

use partir_apps::support::ScaleSeries;
use partir_core::pipeline::ParallelPlan;
use partir_core::solve::BindRule;
use partir_dpl::func::FnTable;
use partir_obs::json::Json;
use partir_obs::report;
use std::path::PathBuf;

/// Common harness arguments, parsed from `std::env::args`.
///
/// * `--json` — emit the machine-readable report on stdout;
/// * `--out PATH` — write the report to `PATH` instead of stdout
///   (implies `--json`);
/// * `--trace-out PATH` — write a Chrome `trace_event` JSON file of the
///   per-rank timelines (honored by `fig_dist`; harnesses without
///   timelines ignore it);
/// * `--check-obs-skew` — measure the observability overhead (obs-on vs
///   obs-off walltime) and fail if it exceeds `PARTIR_OBS_SKEW_MAX_PCT`
///   (default 5%; honored by `fig_dist`);
/// * `--assert-scaling` — fail when the largest rank count's wall-clock
///   exceeds 1-rank wall-clock by more than the allowed ratio on the
///   scaling-critical apps (honored by `fig_dist`; the CI perf gate);
/// * `--max-ratio X` — the allowed `wall(max ranks) / wall(1 rank)` ratio
///   for `--assert-scaling` (overrides `PARTIR_SCALING_MAX_RATIO` and the
///   parallelism-aware default);
/// * `--fault-seed N` — run the fault-tolerance measurement: inject a
///   seeded rank crash (plus mild message loss and duplication) into every
///   app at the largest rank count, verify survivor-side recovery, and
///   emit a `dist_recovery` report section with recovery wall-clock,
///   migrated bytes vs a full re-shard, and the fault-free checkpoint
///   overhead at the Young/Daly interval, gated under
///   `PARTIR_CKPT_OVERHEAD_MAX_PCT` (default 5%; honored by `fig_dist`);
/// * `--assert` — fail when the harness's built-in acceptance gates do
///   not hold (honored by `fig_serve`: warm hit rate must be 100% and
///   warm plan acquisition at least 10x faster than the cold median);
/// * `--placement block|cost|compare` — owner-mapping policy for the
///   distributed runs (honored by `fig_dist`). `block` and `cost` set the
///   policy for the normal scaling table; `compare` runs only the
///   placement axis: block vs cost-driven on placement-adversarial inputs
///   with over-decomposed colors, asserting cost-driven never predicts
///   more cross-rank ghost bytes than block and emitting a `placement`
///   report section.
#[derive(Clone, Debug, Default)]
pub struct BenchArgs {
    pub json: bool,
    pub out: Option<PathBuf>,
    pub trace_out: Option<PathBuf>,
    pub check_obs_skew: bool,
    pub assert_scaling: bool,
    pub assert_gates: bool,
    pub max_ratio: Option<f64>,
    pub fault_seed: Option<u64>,
    pub placement: Option<PlacementMode>,
}

/// `--placement` modes understood by the harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementMode {
    /// Contiguous block owner mapping for the normal tables.
    Block,
    /// Cost-driven owner mapping for the normal tables.
    Cost,
    /// Run only the block-vs-cost placement comparison axis.
    Compare,
}

impl PlacementMode {
    pub fn as_str(self) -> &'static str {
        match self {
            PlacementMode::Block => "block",
            PlacementMode::Cost => "cost",
            PlacementMode::Compare => "compare",
        }
    }
}

impl BenchArgs {
    pub fn parse() -> BenchArgs {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Argument parsing proper, separated from the process-exit policy so
    /// rejection paths are unit-testable.
    pub fn parse_from(it: impl IntoIterator<Item = String>) -> Result<BenchArgs, String> {
        let mut args = BenchArgs::default();
        let mut it = it.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => args.json = true,
                "--out" => {
                    let path =
                        it.next().ok_or_else(|| "--out requires a path argument".to_string())?;
                    args.out = Some(PathBuf::from(path));
                    args.json = true;
                }
                "--trace-out" => {
                    let path = it
                        .next()
                        .ok_or_else(|| "--trace-out requires a path argument".to_string())?;
                    args.trace_out = Some(PathBuf::from(path));
                }
                "--check-obs-skew" => args.check_obs_skew = true,
                "--assert-scaling" => args.assert_scaling = true,
                "--assert" => args.assert_gates = true,
                "--max-ratio" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--max-ratio requires a number argument".to_string())?;
                    let ratio: f64 = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("--max-ratio: '{v}' is not a number"))?;
                    if !ratio.is_finite() || ratio <= 0.0 {
                        return Err(format!("--max-ratio must be a positive number, got {v}"));
                    }
                    args.max_ratio = Some(ratio);
                }
                "--placement" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--placement requires a mode argument".to_string())?;
                    args.placement = Some(match v.trim() {
                        "block" => PlacementMode::Block,
                        "cost" | "cost-driven" => PlacementMode::Cost,
                        "compare" => PlacementMode::Compare,
                        other => {
                            return Err(format!(
                                "--placement: '{other}' is not a mode (expected block|cost|compare)"
                            ));
                        }
                    });
                }
                "--fault-seed" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--fault-seed requires a number argument".to_string())?;
                    let seed: u64 = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("--fault-seed: '{v}' is not an unsigned integer"))?;
                    args.fault_seed = Some(seed);
                }
                other => {
                    return Err(format!(
                        "unknown argument '{other}' (expected --json [--out PATH] \
                         [--trace-out PATH] [--check-obs-skew] [--assert-scaling] [--assert] \
                         [--max-ratio X] [--fault-seed N] \
                         [--placement block|cost|compare])"
                    ));
                }
            }
        }
        Ok(args)
    }

    /// Emits a finished report: writes `--out` / prints the JSON when
    /// requested, otherwise runs the human-readable printer. Exits 1 with
    /// a message on write failure (unwritable path, missing directory).
    pub fn emit(&self, experiment: &str, payload: Json, human: impl FnOnce()) {
        if let Err(msg) = self.try_emit(experiment, payload, human) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }

    /// [`emit`](Self::emit) without the process-exit policy.
    pub fn try_emit(
        &self,
        experiment: &str,
        payload: Json,
        human: impl FnOnce(),
    ) -> Result<(), String> {
        if !self.json {
            human();
            return Ok(());
        }
        let mut doc = report::envelope(experiment);
        if let Json::Obj(fields) = &payload {
            for (k, v) in fields {
                doc = doc.with(k.clone(), v.clone());
            }
        } else {
            doc = doc.with("payload", payload);
        }
        let text = format!("{doc}\n");
        match &self.out {
            None => {
                print!("{text}");
                Ok(())
            }
            Some(path) => match std::fs::write(path, &text) {
                Ok(()) => {
                    eprintln!("wrote {}", path.display());
                    Ok(())
                }
                Err(e) => Err(format!("failed to write {}: {e}", path.display())),
            },
        }
    }
}

/// JSON form of one auto-parallelization run: the Table 1 timing rows plus
/// the solver/unification internals the paper's table doesn't show but the
/// explanation traces record, and the per-symbol equality provenance.
pub fn plan_json(name: &str, plan: &ParallelPlan, loops: usize, fns: &FnTable) -> Json {
    let t = &plan.timings;
    let s = &plan.solution.stats;
    let u = &plan.unified;
    let (exprs_interned, dedup_hits) = plan.system.arena.counters();
    let mut provenance = Json::array();
    for (i, e) in plan.solution.bindings.iter().enumerate() {
        let rule = plan.solution.provenance.get(i).copied().unwrap_or(BindRule::EqualTrivial);
        provenance = provenance.push(
            Json::object()
                .with("symbol", format!("P{i}"))
                .with("name", plan.system.sym_names.get(i).map(String::as_str).unwrap_or(""))
                .with("binding", e.display(fns, &plan.system.externals))
                .with("rule", rule.as_str()),
        );
    }
    let mut merges = Json::array();
    for m in &plan.unified.merge_log {
        merges =
            merges.push(Json::object().with("stage", m.stage).with("detail", m.detail.as_str()));
    }
    Json::object()
        .with("name", name)
        .with("loops", loops)
        .with("partitions", plan.num_partitions())
        .with("relaxed_loops", plan.loops.iter().filter(|l| l.relaxed).count())
        .with(
            "timings_ms",
            Json::object()
                .with("inference", report::ns_to_ms(t.inference.as_nanos()))
                .with("solver", report::ns_to_ms(t.solver.as_nanos()))
                .with("rewrite", report::ns_to_ms(t.rewrite.as_nanos()))
                .with("total", report::ns_to_ms((t.inference + t.solver + t.rewrite).as_nanos())),
        )
        .with(
            "solver",
            Json::object()
                .with("nodes_explored", s.nodes_explored)
                .with("candidates_tried", s.candidates_tried)
                .with("backtracks", s.backtracks)
                .with("lemma_applications", s.lemma_applications)
                .with("degraded", plan.solution.degraded)
                .with(
                    "budget_exhausted",
                    s.exhausted.map(|r| Json::from(r.as_str())).unwrap_or(Json::Null),
                ),
        )
        .with(
            "interning",
            Json::object()
                .with("exprs_interned", exprs_interned)
                .with("dedup_hits", dedup_hits)
                .with("subst_cache_hits", s.subst_cache_hits)
                .with("lemma_memo_hits", s.lemma_memo_hits),
        )
        .with(
            "unification",
            Json::object()
                .with("merged_symbols", u.merged)
                .with("chain_collapses", u.stats.chain_collapses)
                .with("candidates_considered", u.stats.candidates_considered)
                .with("merges_accepted", u.stats.merges_accepted)
                .with("rejected_structural", u.stats.rejected_structural)
                .with("rejected_unsolvable", u.stats.rejected_unsolvable)
                .with("max_graph_nodes", u.stats.max_graph_nodes)
                .with("max_graph_edges", u.stats.max_graph_edges)
                .with("check_lemma_applications", u.check_stats.lemma_applications),
        )
        .with("unify_merges", merges)
        .with("provenance", provenance)
}

/// JSON form of a Figure 14 experiment: one entry per plotted line, each
/// with per-point throughput and simulator cost breakdowns.
pub fn series_json(series: &[ScaleSeries]) -> Json {
    let mut arr = Json::array();
    for s in series {
        arr = arr.push(s.to_json());
    }
    arr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_from_accepts_json_and_out() {
        let a = BenchArgs::parse_from(argv(&["--json"])).unwrap();
        assert!(a.json && a.out.is_none());
        let a = BenchArgs::parse_from(argv(&["--out", "/tmp/x.json"])).unwrap();
        assert!(a.json);
        assert_eq!(a.out.as_deref(), Some(std::path::Path::new("/tmp/x.json")));
    }

    #[test]
    fn parse_from_accepts_trace_out_and_skew_check() {
        let a = BenchArgs::parse_from(argv(&["--trace-out", "/tmp/t.json", "--check-obs-skew"]))
            .unwrap();
        assert!(!a.json, "--trace-out alone does not imply --json");
        assert_eq!(a.trace_out.as_deref(), Some(std::path::Path::new("/tmp/t.json")));
        assert!(a.check_obs_skew);
    }

    #[test]
    fn parse_from_accepts_scaling_gate_flags() {
        let a = BenchArgs::parse_from(argv(&["--assert-scaling"])).unwrap();
        assert!(a.assert_scaling && a.max_ratio.is_none());
        let a = BenchArgs::parse_from(argv(&["--assert-scaling", "--max-ratio", "1.25"])).unwrap();
        assert_eq!(a.max_ratio, Some(1.25));
        let err = BenchArgs::parse_from(argv(&["--max-ratio", "zero"])).unwrap_err();
        assert!(err.contains("not a number"), "{err}");
        let err = BenchArgs::parse_from(argv(&["--max-ratio", "-2"])).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn parse_from_accepts_fault_seed() {
        let a = BenchArgs::parse_from(argv(&["--fault-seed", "42"])).unwrap();
        assert_eq!(a.fault_seed, Some(42));
        assert!(!a.json, "--fault-seed alone does not imply --json");
        let err = BenchArgs::parse_from(argv(&["--fault-seed"])).unwrap_err();
        assert!(err.contains("requires a number"), "{err}");
        let err = BenchArgs::parse_from(argv(&["--fault-seed", "-3"])).unwrap_err();
        assert!(err.contains("not an unsigned integer"), "{err}");
    }

    #[test]
    fn parse_from_accepts_placement_modes() {
        let a = BenchArgs::parse_from(argv(&["--placement", "block"])).unwrap();
        assert_eq!(a.placement, Some(PlacementMode::Block));
        let a = BenchArgs::parse_from(argv(&["--placement", "cost"])).unwrap();
        assert_eq!(a.placement, Some(PlacementMode::Cost));
        let a = BenchArgs::parse_from(argv(&["--placement", "cost-driven"])).unwrap();
        assert_eq!(a.placement, Some(PlacementMode::Cost));
        let a = BenchArgs::parse_from(argv(&["--placement", "compare"])).unwrap();
        assert_eq!(a.placement, Some(PlacementMode::Compare));
        assert_eq!(a.placement.unwrap().as_str(), "compare");
        let err = BenchArgs::parse_from(argv(&["--placement", "greedy"])).unwrap_err();
        assert!(err.contains("block|cost|compare"), "{err}");
        let err = BenchArgs::parse_from(argv(&["--placement"])).unwrap_err();
        assert!(err.contains("requires a mode"), "{err}");
    }

    #[test]
    fn parse_from_accepts_assert() {
        let a = BenchArgs::parse_from(argv(&["--assert", "--json"])).unwrap();
        assert!(a.assert_gates && a.json);
        let a = BenchArgs::parse_from(argv(&["--assert-scaling"])).unwrap();
        assert!(a.assert_scaling && !a.assert_gates, "--assert-scaling is a different flag");
    }

    #[test]
    fn parse_from_rejects_bad_args_with_message() {
        let err = BenchArgs::parse_from(argv(&["--bogus"])).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        let err = BenchArgs::parse_from(argv(&["--out"])).unwrap_err();
        assert!(err.contains("requires a path"), "{err}");
        let err = BenchArgs::parse_from(argv(&["--trace-out"])).unwrap_err();
        assert!(err.contains("requires a path"), "{err}");
    }

    #[test]
    fn try_emit_reports_unwritable_path() {
        let args = BenchArgs {
            json: true,
            out: Some(PathBuf::from("/nonexistent-dir-partir/report.json")),
            ..BenchArgs::default()
        };
        let err = args.try_emit("t", Json::object().with("k", 1u64), || {}).unwrap_err();
        assert!(err.contains("failed to write"), "{err}");
        assert!(err.contains("/nonexistent-dir-partir/report.json"), "{err}");
    }

    #[test]
    fn try_emit_without_json_runs_human_printer() {
        let mut ran = false;
        let args = BenchArgs::default();
        args.try_emit("t", Json::object(), || ran = true).unwrap();
        assert!(ran);
    }
}
