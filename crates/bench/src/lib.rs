//! Benchmark harness crate; see the bin targets and benches.
//!
//! The bin targets share this module's report plumbing: every harness
//! accepts `--json [--out PATH]` and emits a `partir-report-v1` envelope
//! (see `partir_obs::report`) instead of the human tables, so experiment
//! results are machine-readable and diffable across PRs.

use partir_apps::support::ScaleSeries;
use partir_core::pipeline::ParallelPlan;
use partir_core::solve::BindRule;
use partir_dpl::func::FnTable;
use partir_obs::json::Json;
use partir_obs::report;
use std::path::PathBuf;

/// Common harness arguments, parsed from `std::env::args`.
///
/// * `--json` — emit the machine-readable report on stdout;
/// * `--out PATH` — write the report to `PATH` instead of stdout
///   (implies `--json`).
#[derive(Clone, Debug, Default)]
pub struct BenchArgs {
    pub json: bool,
    pub out: Option<PathBuf>,
}

impl BenchArgs {
    pub fn parse() -> BenchArgs {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => args.json = true,
                "--out" => {
                    let path = it.next().unwrap_or_else(|| {
                        eprintln!("--out requires a path argument");
                        std::process::exit(2);
                    });
                    args.out = Some(PathBuf::from(path));
                    args.json = true;
                }
                other => {
                    eprintln!("unknown argument '{other}' (expected --json [--out PATH])");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Emits a finished report: writes `--out` / prints the JSON when
    /// requested, otherwise runs the human-readable printer.
    pub fn emit(&self, experiment: &str, payload: Json, human: impl FnOnce()) {
        if !self.json {
            human();
            return;
        }
        let mut doc = report::envelope(experiment);
        if let Json::Obj(fields) = &payload {
            for (k, v) in fields {
                doc = doc.with(k.clone(), v.clone());
            }
        } else {
            doc = doc.with("payload", payload);
        }
        let text = format!("{doc}\n");
        match &self.out {
            None => print!("{text}"),
            Some(path) => {
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("failed to write {}: {e}", path.display());
                    std::process::exit(1);
                }
                eprintln!("wrote {}", path.display());
            }
        }
    }
}

/// JSON form of one auto-parallelization run: the Table 1 timing rows plus
/// the solver/unification internals the paper's table doesn't show but the
/// explanation traces record, and the per-symbol equality provenance.
pub fn plan_json(name: &str, plan: &ParallelPlan, loops: usize, fns: &FnTable) -> Json {
    let t = &plan.timings;
    let s = &plan.solution.stats;
    let u = &plan.unified;
    let mut provenance = Json::array();
    for (i, e) in plan.solution.bindings.iter().enumerate() {
        let rule = plan
            .solution
            .provenance
            .get(i)
            .copied()
            .unwrap_or(BindRule::EqualTrivial);
        provenance = provenance.push(
            Json::object()
                .with("symbol", format!("P{i}"))
                .with(
                    "name",
                    plan.system.sym_names.get(i).map(String::as_str).unwrap_or(""),
                )
                .with("binding", e.display(fns, &plan.system.externals))
                .with("rule", rule.as_str()),
        );
    }
    let mut merges = Json::array();
    for m in &plan.unified.merge_log {
        merges = merges
            .push(Json::object().with("stage", m.stage).with("detail", m.detail.as_str()));
    }
    Json::object()
        .with("name", name)
        .with("loops", loops)
        .with("partitions", plan.num_partitions())
        .with("relaxed_loops", plan.loops.iter().filter(|l| l.relaxed).count())
        .with(
            "timings_ms",
            Json::object()
                .with("inference", report::ns_to_ms(t.inference.as_nanos()))
                .with("solver", report::ns_to_ms(t.solver.as_nanos()))
                .with("rewrite", report::ns_to_ms(t.rewrite.as_nanos()))
                .with(
                    "total",
                    report::ns_to_ms((t.inference + t.solver + t.rewrite).as_nanos()),
                ),
        )
        .with(
            "solver",
            Json::object()
                .with("nodes_explored", s.nodes_explored)
                .with("candidates_tried", s.candidates_tried)
                .with("backtracks", s.backtracks)
                .with("lemma_applications", s.lemma_applications),
        )
        .with(
            "unification",
            Json::object()
                .with("merged_symbols", u.merged)
                .with("chain_collapses", u.stats.chain_collapses)
                .with("candidates_considered", u.stats.candidates_considered)
                .with("merges_accepted", u.stats.merges_accepted)
                .with("rejected_structural", u.stats.rejected_structural)
                .with("rejected_unsolvable", u.stats.rejected_unsolvable)
                .with("max_graph_nodes", u.stats.max_graph_nodes)
                .with("max_graph_edges", u.stats.max_graph_edges)
                .with("check_lemma_applications", u.check_stats.lemma_applications),
        )
        .with("unify_merges", merges)
        .with("provenance", provenance)
}

/// JSON form of a Figure 14 experiment: one entry per plotted line, each
/// with per-point throughput and simulator cost breakdowns.
pub fn series_json(series: &[ScaleSeries]) -> Json {
    let mut arr = Json::array();
    for s in series {
        arr = arr.push(s.to_json());
    }
    arr
}
