//! Benchmark harness crate; see the bin targets and benches.
