//! Criterion microbenchmarks for the partitioning pipeline:
//!
//! * index-set algebra (the substrate all operators reduce to);
//! * DPL operators (`equal`, `image`, `preimage` on pointer fields);
//! * constraint inference (Algorithm 1);
//! * the constraint solver (Algorithm 2), with and without unification
//!   (Algorithm 3) — the unification ablation DESIGN.md calls out;
//! * the end-to-end auto-parallelization pass per benchmark app (the
//!   quantities Table 1 reports);
//! * threaded parallel execution vs the sequential interpreter.
//!
//! Run: `cargo bench -p partir-bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partir_apps::{circuit, miniaero, pennant, spmv, stencil};
use partir_core::eval::ExtBindings;
use partir_core::infer::infer;
use partir_core::pipeline::{auto_parallelize, Hints, Options};
use partir_core::solve::solve;
use partir_core::unify::unify;
use partir_dpl::index_set::IndexSet;
use partir_dpl::ops;
use partir_dpl::region::{FieldKind, Schema, Store};
use partir_runtime::exec::{execute_program, ExecOptions};
use rand::{Rng, SeedableRng};

fn bench_index_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_set");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for &n in &[1_000u64, 100_000] {
        let a = IndexSet::from_indices((0..n).filter(|_| rng.gen_bool(0.5)));
        let b = IndexSet::from_indices((0..n).filter(|_| rng.gen_bool(0.5)));
        g.bench_with_input(BenchmarkId::new("union", n), &n, |bench, _| bench.iter(|| a.union(&b)));
        g.bench_with_input(BenchmarkId::new("intersect", n), &n, |bench, _| {
            bench.iter(|| a.intersect(&b))
        });
        g.bench_with_input(BenchmarkId::new("difference", n), &n, |bench, _| {
            bench.iter(|| a.difference(&b))
        });
        g.bench_with_input(BenchmarkId::new("from_indices", n), &n, |bench, _| {
            let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            bench.iter(|| IndexSet::from_indices(v.iter().copied()))
        });
    }
    g.finish();
}

fn bench_dpl_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpl_ops");
    for &n in &[10_000u64, 200_000] {
        let mut schema = Schema::new();
        let dst = schema.add_region("Dst", n / 10);
        let src = schema.add_region("Src", n);
        let pf = schema.add_field(src, "ptr", FieldKind::Ptr(dst));
        let mut store = Store::new(schema);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for v in store.ptrs_mut(pf).iter_mut() {
            *v = rng.gen_range(0..n / 10);
        }
        let mut fns = partir_dpl::func::FnTable::new();
        let f = fns.add_ptr_field("ptr", src, dst, pf);
        let p_src = ops::equal(src, n, 16);
        let p_dst = ops::equal(dst, n / 10, 16);
        g.bench_with_input(BenchmarkId::new("equal", n), &n, |bench, _| {
            bench.iter(|| ops::equal(src, n, 16))
        });
        g.bench_with_input(BenchmarkId::new("image_ptr", n), &n, |bench, _| {
            bench.iter(|| ops::image(&store, &fns, &p_src, f, dst))
        });
        g.bench_with_input(BenchmarkId::new("preimage_ptr", n), &n, |bench, _| {
            bench.iter(|| ops::preimage(&store, &fns, src, f, &p_dst))
        });
    }
    g.finish();
}

fn pennant_loops() -> (Vec<partir_ir::ast::Loop>, partir_dpl::func::FnTable, Schema) {
    let app = pennant::Pennant::generate(&pennant::PennantParams::default());
    (app.program.clone(), app.fns.clone(), app.store.schema().clone())
}

fn bench_inference_and_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_phases");
    let (loops, fns, schema) = pennant_loops();
    g.bench_function("infer/pennant", |b| b.iter(|| infer(&loops, &fns, &schema).unwrap()));
    let inference = infer(&loops, &fns, &schema).unwrap();
    g.bench_function("unify/pennant", |b| b.iter(|| unify(&inference, &fns)));
    let unified = unify(&inference, &fns);
    g.bench_function("solve/pennant-unified", |b| b.iter(|| solve(&unified.system, &fns).unwrap()));
    // Ablation: solving the raw (un-unified) system.
    g.bench_function("solve/pennant-raw", |b| b.iter(|| solve(&inference.system, &fns).unwrap()));
    g.finish();
}

fn bench_auto_parallelize(c: &mut Criterion) {
    let mut g = c.benchmark_group("auto_parallelize");
    g.sample_size(20);

    let app = spmv::Spmv::generate(&spmv::SpmvParams {
        rows: 10_000,
        halo: 2,
        ..spmv::SpmvParams::default()
    });
    g.bench_function("spmv", |b| {
        b.iter(|| {
            auto_parallelize(
                &app.program,
                &app.fns,
                app.store.schema(),
                &Hints::new(),
                Options::default(),
            )
            .unwrap()
        })
    });
    let app = stencil::Stencil::generate(&stencil::StencilParams { nx: 64, ny: 64 });
    g.bench_function("stencil", |b| {
        b.iter(|| {
            auto_parallelize(
                &app.program,
                &app.fns,
                app.store.schema(),
                &Hints::new(),
                Options::default(),
            )
            .unwrap()
        })
    });
    let app = circuit::Circuit::generate(&circuit::CircuitParams::default());
    g.bench_function("circuit", |b| {
        b.iter(|| {
            auto_parallelize(
                &app.program,
                &app.fns,
                app.store.schema(),
                &Hints::new(),
                Options::default(),
            )
            .unwrap()
        })
    });
    let app = miniaero::MiniAero::generate(&miniaero::MiniAeroParams::default());
    g.bench_function("miniaero", |b| {
        b.iter(|| {
            auto_parallelize(
                &app.program,
                &app.fns,
                app.store.schema(),
                &Hints::new(),
                Options::default(),
            )
            .unwrap()
        })
    });
    let app = pennant::Pennant::generate(&pennant::PennantParams::default());
    g.bench_function("pennant", |b| {
        b.iter(|| {
            auto_parallelize(
                &app.program,
                &app.fns,
                app.store.schema(),
                &Hints::new(),
                Options::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

/// Interning ablation: partition evaluation through the hash-consed IR
/// (shared arena + memoized `eval_id`) vs the pre-interning tree semantics
/// (fresh evaluator per expression, deep-copied results). Solving itself is
/// covered by `pipeline_phases`/`auto_parallelize` above; its trajectory
/// across PRs is what `BENCH_partir.json` diffs.
fn bench_interning(c: &mut Criterion) {
    use partir_core::eval::Evaluator;
    use partir_core::pipeline::ParallelPlan;
    use partir_dpl::partition::Partition;

    fn tree_baseline(
        plan: &ParallelPlan,
        store: &Store,
        fns: &partir_dpl::func::FnTable,
        exts: &ExtBindings,
    ) -> Vec<Partition> {
        plan.partition_exprs
            .iter()
            .map(|e| {
                let mut ev = Evaluator::new(store, fns, 8, exts);
                Partition::clone(&ev.eval(e))
            })
            .collect()
    }

    let mut g = c.benchmark_group("interning_eval");
    g.sample_size(20);
    let exts = ExtBindings::new();

    let mut run = |name: &str,
                   program: &[partir_ir::ast::Loop],
                   fns: &partir_dpl::func::FnTable,
                   store: &Store| {
        let schema = store.schema().clone();
        let plan =
            auto_parallelize(program, fns, &schema, &Hints::new(), Options::default()).unwrap();
        g.bench_function(BenchmarkId::new("interned", name), |b| {
            b.iter(|| plan.evaluate(store, fns, 8, &exts))
        });
        g.bench_function(BenchmarkId::new("tree", name), |b| {
            b.iter(|| tree_baseline(&plan, store, fns, &exts))
        });
    };

    let app = spmv::Spmv::generate(&spmv::SpmvParams {
        rows: 10_000,
        halo: 2,
        ..spmv::SpmvParams::default()
    });
    run("spmv", &app.program, &app.fns, &app.store);
    let app = stencil::Stencil::generate(&stencil::StencilParams { nx: 64, ny: 64 });
    run("stencil", &app.program, &app.fns, &app.store);
    let app = circuit::Circuit::generate(&circuit::CircuitParams::default());
    run("circuit", &app.program, &app.fns, &app.store);
    let app = miniaero::MiniAero::generate(&miniaero::MiniAeroParams::default());
    run("miniaero", &app.program, &app.fns, &app.store);
    let app = pennant::Pennant::generate(&pennant::PennantParams::default());
    run("pennant", &app.program, &app.fns, &app.store);
    g.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("execution");
    g.sample_size(20);
    let app = spmv::Spmv::generate(&spmv::SpmvParams {
        rows: 200_000,
        halo: 2,
        ..spmv::SpmvParams::default()
    });
    let plan = app.auto_plan();
    let parts = plan.evaluate(&app.store, &app.fns, 8, &ExtBindings::new());
    g.bench_function("spmv_seq", |b| {
        b.iter(|| {
            let mut store = app.store.clone();
            partir_ir::interp::run_program_seq(&app.program, &mut store, &app.fns);
            store
        })
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("spmv_parallel", threads), &threads, |b, &threads| {
            b.iter(|| {
                let mut store = app.store.clone();
                execute_program(
                    &app.program,
                    &plan,
                    &parts,
                    &mut store,
                    &app.fns,
                    &ExecOptions {
                        n_threads: threads,
                        check_legality: false,
                        ..ExecOptions::default()
                    },
                )
                .unwrap();
                store
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_index_set,
    bench_dpl_ops,
    bench_inference_and_solver,
    bench_auto_parallelize,
    bench_interning,
    bench_execution
);
criterion_main!(benches);
