//! The report aggregator must fail loudly — nonzero exit plus a message
//! naming the offending file — on unreadable paths, malformed JSON, and
//! invalid envelopes, and must not silently drop a failed `--out` write.

use std::path::PathBuf;
use std::process::{Command, Stdio};

fn report_bin() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_report"));
    c.stdin(Stdio::null());
    c
}

fn tmp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("partir-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

fn valid_envelope() -> String {
    "{\"schema\": \"partir-report-v1\", \"experiment\": \"t\", \"created_unix_ms\": 0}\n"
        .to_string()
}

#[test]
fn missing_input_file_exits_nonzero_with_path() {
    let out = report_bin().arg("/nonexistent-dir-partir/missing.json").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(stderr.contains("missing.json"), "{stderr}");
}

#[test]
fn malformed_json_exits_nonzero_with_path() {
    let bad = tmp_file("malformed.json", "{not json");
    let out = report_bin().arg(&bad).output().unwrap();
    std::fs::remove_file(&bad).ok();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed.json"), "{stderr}");
}

#[test]
fn wrong_schema_exits_nonzero() {
    let bad = tmp_file("schema.json", "{\"schema\": \"partir-report-v0\"}");
    let out = report_bin().arg(&bad).output().unwrap();
    std::fs::remove_file(&bad).ok();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a valid report"), "{stderr}");
}

#[test]
fn unwritable_out_path_exits_nonzero() {
    let good = tmp_file("good.json", &valid_envelope());
    let out = report_bin()
        .arg("--out")
        .arg("/nonexistent-dir-partir/agg.json")
        .arg(&good)
        .output()
        .unwrap();
    std::fs::remove_file(&good).ok();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("failed to write"), "{stderr}");
}

#[test]
fn no_inputs_exits_with_usage_error() {
    let out = report_bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no report files"), "{stderr}");
}

#[test]
fn valid_inputs_aggregate_successfully() {
    let good = tmp_file("ok.json", &valid_envelope());
    let agg = std::env::temp_dir().join(format!("partir-cli-{}-agg.json", std::process::id()));
    let out = report_bin().arg("--out").arg(&agg).arg(&good).output().unwrap();
    std::fs::remove_file(&good).ok();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&agg).unwrap();
    std::fs::remove_file(&agg).ok();
    assert!(text.contains("\"experiment\":\"aggregate\""), "{text}");
    assert!(text.contains("\"t\""), "{text}");
}
