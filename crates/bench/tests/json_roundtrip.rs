//! Round-trip test for the `--json` report path: the table1 payload for
//! all five applications survives render → parse with every Table-1 row
//! (and the solver-internals rows) intact.

use partir_apps::{circuit, miniaero, pennant, spmv, stencil};
use partir_bench::plan_json;
use partir_core::pipeline::{auto_parallelize, Hints, Options};
use partir_obs::json::Json;
use partir_obs::report;

#[test]
fn table1_json_round_trips_every_row() {
    let mut apps = Json::array();

    let app = spmv::Spmv::generate(&spmv::SpmvParams {
        rows: 500,
        halo: 2,
        ..spmv::SpmvParams::default()
    });
    apps = apps.push(plan_json("SpMV", &app.auto_plan(), app.program.len(), &app.fns));

    let app = stencil::Stencil::generate(&stencil::StencilParams { nx: 16, ny: 16 });
    apps = apps.push(plan_json("Stencil", &app.auto_plan(), app.program.len(), &app.fns));

    let app = circuit::Circuit::generate(&circuit::CircuitParams {
        clusters: 2,
        nodes_per_cluster: 100,
        wires_per_cluster: 200,
        cross_fraction: 0.2,
        cross_stride: None,
        seed: 7,
    });
    apps = apps.push(plan_json("Circuit", &app.auto_plan(), app.program.len(), &app.fns));

    let app = miniaero::MiniAero::generate(&miniaero::MiniAeroParams { nx: 4, ny: 4, nz: 4 });
    apps = apps.push(plan_json("MiniAero", &app.auto_plan(), app.program.len(), &app.fns));

    let app = pennant::Pennant::generate(&pennant::PennantParams { pieces: 2, zw: 4, zy: 4 });
    let plan = auto_parallelize(
        &app.program,
        &app.fns,
        app.store.schema(),
        &Hints::new(),
        Options::default(),
    )
    .expect("pennant");
    apps = apps.push(plan_json("PENNANT", &plan, app.program.len(), &app.fns));

    let doc = report::envelope("table1").with("apps", apps);
    let text = doc.to_string();
    let parsed = Json::parse(&text).expect("report parses back");
    assert_eq!(report::validate_envelope(&parsed).unwrap(), "table1");
    assert_eq!(parsed, doc, "render → parse must be lossless");

    let rows = parsed.get("apps").and_then(Json::as_array).expect("apps array");
    let names: Vec<&str> =
        rows.iter().map(|r| r.get("name").and_then(Json::as_str).unwrap()).collect();
    assert_eq!(names, ["SpMV", "Stencil", "Circuit", "MiniAero", "PENNANT"]);

    for row in rows {
        let name = row.get("name").and_then(Json::as_str).unwrap();
        // Table 1's timing rows.
        let t = row.get("timings_ms").expect("timings_ms");
        let mut total = 0.0;
        for phase in ["inference", "solver", "rewrite"] {
            let v = t
                .get(phase)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{name}: missing timing '{phase}'"));
            assert!(v >= 0.0);
            total += v;
        }
        let reported = t.get("total").and_then(Json::as_f64).unwrap();
        assert!(
            (reported - total).abs() < 1e-6,
            "{name}: total {reported} != sum of phases {total}"
        );
        // Table 1's count rows.
        assert!(row.get("loops").and_then(Json::as_u64).unwrap() >= 1, "{name}");
        assert!(row.get("partitions").and_then(Json::as_u64).unwrap() >= 1, "{name}");
        // The solver-internals rows this reproduction adds.
        let s = row.get("solver").expect("solver block");
        for key in ["nodes_explored", "candidates_tried", "backtracks", "lemma_applications"] {
            assert!(s.get(key).and_then(Json::as_u64).is_some(), "{name}: solver.{key}");
        }
        let u = row.get("unification").expect("unification block");
        for key in ["merged_symbols", "candidates_considered", "merges_accepted"] {
            assert!(u.get(key).and_then(Json::as_u64).is_some(), "{name}: unification.{key}");
        }
        // Per-symbol equality provenance: one entry per symbol, each citing
        // a candidate rule.
        let prov = row.get("provenance").and_then(Json::as_array).expect("provenance");
        assert!(!prov.is_empty(), "{name}: empty provenance");
        for p in prov {
            assert!(p.get("symbol").and_then(Json::as_str).is_some());
            assert!(p.get("binding").and_then(Json::as_str).is_some());
            let rule = p.get("rule").and_then(Json::as_str).unwrap();
            assert!(
                rule.contains("forced") || rule.contains('L') || rule.contains("unconstrained"),
                "{name}: unrecognized rule '{rule}'"
            );
        }
    }
}
