//! Shared plumbing for the benchmark applications: turning an
//! auto-parallelization plan plus evaluated partitions into a simulator
//! spec, and small helpers for weak-scaling studies.

use partir_core::pipeline::{ParallelPlan, PlannedReduce};
use partir_dpl::partition::Partition;
use partir_dpl::region::{RegionId, Store};
use partir_ir::analysis::AccessKind;
use partir_ir::ast::Loop;
use partir_runtime::sim::{
    MachineModel, NodeBreakdown, SimAccess, SimKind, SimLoop, SimResult, SimSpec,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-loop simulation weights (work units per iteration element).
#[derive(Clone, Debug)]
pub struct LoopWeights(pub Vec<f64>);

impl LoopWeights {
    pub fn uniform(n: usize, w: f64) -> Self {
        LoopWeights(vec![w; n])
    }
}

/// Builds a simulator spec from an auto-parallelization plan: the spec's
/// partitions are exactly the solver's partitions, so the simulated
/// communication reflects what the synthesized DPL program would move.
pub fn sim_spec_from_plan(
    program: &[Loop],
    plan: &ParallelPlan,
    parts: &[Arc<Partition>],
    store: &Store,
    weights: &LoopWeights,
) -> SimSpec {
    let schema = store.schema();
    let mut region_sizes: HashMap<RegionId, u64> = HashMap::new();
    for (rid, decl) in schema.regions() {
        region_sizes.insert(rid, decl.size);
    }

    let mut loops = Vec::with_capacity(program.len());
    for (li, lp) in program.iter().enumerate() {
        let loop_plan = &plan.loops[li];
        let iter = Partition::clone(&parts[loop_plan.iter.0 as usize]);
        let mut accesses = Vec::new();
        // Accesses sharing one partition share one physical instance (and
        // thus one data movement): deduplicate by (partition, access
        // class), like the runtime would.
        let mut seen: Vec<(u32, u8, Option<u32>)> = Vec::new();
        for ap in &loop_plan.accesses {
            let class: u8 = match (&ap.kind, &ap.reduce) {
                (AccessKind::Read, _) => 0,
                (AccessKind::Write, _) => 1,
                _ => 2,
            };
            let private = match &ap.reduce {
                Some(PlannedReduce::BufferedPrivate { private }) => Some(private.0),
                _ => None,
            };
            let key = (ap.part.0, class, private);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let part = Partition::clone(&parts[ap.part.0 as usize]);
            let region = part.region;
            let kind = match (&ap.kind, &ap.reduce) {
                (AccessKind::Read, _) => SimKind::Read,
                (AccessKind::Write, _) => SimKind::Write,
                (AccessKind::Reduce(_), None) => SimKind::ReduceDirect, // centered
                (AccessKind::Reduce(_), Some(PlannedReduce::Direct))
                | (AccessKind::Reduce(_), Some(PlannedReduce::Guarded)) => SimKind::ReduceDirect,
                (AccessKind::Reduce(_), Some(PlannedReduce::Buffered)) => {
                    SimKind::ReduceBuffered { buffer_sets: part.subregions().to_vec() }
                }
                (AccessKind::Reduce(_), Some(PlannedReduce::BufferedPrivate { private })) => {
                    let ppart = &parts[private.0 as usize];
                    let sets = part
                        .subregions()
                        .iter()
                        .zip(ppart.subregions())
                        .map(|(a, p)| a.difference(p))
                        .collect();
                    SimKind::ReduceBuffered { buffer_sets: sets }
                }
            };
            let expr_weight = pexpr_weight(&plan.partition_exprs[ap.part.0 as usize]);
            accesses.push(SimAccess {
                region,
                part,
                kind,
                bytes_per_elem: 8.0,
                group: None,
                expr_weight,
            });
        }
        loops.push(SimLoop { name: lp.name.clone(), iter, work_per_iter: weights.0[li], accesses });
    }

    SimSpec { loops, region_sizes, initial_home: HashMap::new() }
}

/// Operator-node count of a partition expression — the complexity weight
/// the simulator charges for runtime metadata. Externally provided
/// partitions weigh 1.
pub fn pexpr_weight(e: &partir_core::lang::PExpr) -> f64 {
    use partir_core::lang::PExpr;
    match e {
        PExpr::Sym(_) | PExpr::Ext(_) | PExpr::Equal(_) => 1.0,
        PExpr::Image { src, .. } | PExpr::Preimage { src, .. } => 1.0 + pexpr_weight(src),
        PExpr::Union(a, b) | PExpr::Intersect(a, b) | PExpr::Difference(a, b) => {
            1.0 + pexpr_weight(a) + pexpr_weight(b)
        }
    }
}

/// The node counts of the Figure 14 x-axes.
pub const FIG14_NODES: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Compact simulator summary carried with each scale point into JSON
/// reports: scalar totals plus the bottleneck node's cost split, so a
/// report reader can tell *why* a curve bends (compute vs bytes vs
/// latency vs fragmentation vs runtime metadata) without rerunning.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimSummary {
    pub iteration_time_s: f64,
    /// Failure-aware expected iteration time (equals `iteration_time_s`
    /// when the machine model has no failure model).
    pub expected_iteration_time_s: f64,
    pub total_bytes: f64,
    pub total_work: f64,
    /// Node whose time equals the iteration time.
    pub bottleneck_node: usize,
    pub bottleneck_compute_s: f64,
    pub bottleneck_comm_s: f64,
    pub bottleneck_latency_s: f64,
    pub bottleneck_run_overhead_s: f64,
    pub bottleneck_meta_s: f64,
}

impl SimSummary {
    pub fn from_result(res: &SimResult, m: &MachineModel) -> Self {
        let (node, b) = res
            .per_node
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.time(m).total_cmp(&b.time(m)))
            .map(|(i, b)| (i, *b))
            .unwrap_or((0, NodeBreakdown::default()));
        SimSummary {
            iteration_time_s: res.iteration_time,
            expected_iteration_time_s: res.effective_time(),
            total_bytes: res.total_bytes,
            total_work: res.total_work,
            bottleneck_node: node,
            bottleneck_compute_s: b.compute,
            bottleneck_comm_s: b.comm_bytes / m.bandwidth,
            bottleneck_latency_s: b.messages as f64 * m.latency,
            bottleneck_run_overhead_s: b.runs as f64 * m.run_overhead,
            bottleneck_meta_s: b.meta_units * m.meta_overhead,
        }
    }

    pub fn to_json(&self) -> partir_obs::json::Json {
        partir_obs::json::Json::object()
            .with("iteration_time_s", self.iteration_time_s)
            .with("expected_iteration_time_s", self.expected_iteration_time_s)
            .with("total_bytes", self.total_bytes)
            .with("total_work", self.total_work)
            .with("bottleneck_node", self.bottleneck_node)
            .with("bottleneck_compute_s", self.bottleneck_compute_s)
            .with("bottleneck_comm_s", self.bottleneck_comm_s)
            .with("bottleneck_latency_s", self.bottleneck_latency_s)
            .with("bottleneck_run_overhead_s", self.bottleneck_run_overhead_s)
            .with("bottleneck_meta_s", self.bottleneck_meta_s)
    }
}

/// One point of a weak-scaling series.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    pub nodes: usize,
    /// App items (non-zeros, points, cells, wires, zones) per second per
    /// node.
    pub throughput_per_node: f64,
    /// Simulator cost breakdown behind this point.
    pub sim: SimSummary,
}

/// A named weak-scaling series (one line of a Figure 14 plot).
#[derive(Clone, Debug)]
pub struct ScaleSeries {
    pub label: String,
    pub points: Vec<ScalePoint>,
}

impl ScaleSeries {
    /// Parallel efficiency at the largest node count relative to 1 node.
    pub fn efficiency(&self) -> f64 {
        let first = self.points.first().expect("non-empty series");
        let last = self.points.last().expect("non-empty series");
        last.throughput_per_node / first.throughput_per_node
    }

    pub fn at(&self, nodes: usize) -> Option<f64> {
        self.points.iter().find(|p| p.nodes == nodes).map(|p| p.throughput_per_node)
    }

    /// JSON form for machine-readable reports (one Figure-14 line).
    pub fn to_json(&self) -> partir_obs::json::Json {
        use partir_obs::json::Json;
        let mut points = Json::array();
        for p in &self.points {
            points = points.push(
                Json::object()
                    .with("nodes", p.nodes)
                    .with("throughput_per_node", p.throughput_per_node)
                    .with("sim", p.sim.to_json()),
            );
        }
        Json::object()
            .with("label", self.label.as_str())
            .with("efficiency", self.efficiency())
            .with("points", points)
    }
}

/// Renders series as the rows a Figure 14 subplot plots.
pub fn render_series(title: &str, series: &[ScaleSeries]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:>8}", "nodes");
    for s in series {
        let _ = write!(out, "{:>16}", s.label);
    }
    let _ = writeln!(out);
    let all_nodes: Vec<usize> =
        series.first().map(|s| s.points.iter().map(|p| p.nodes).collect()).unwrap_or_default();
    for n in all_nodes {
        let _ = write!(out, "{n:>8}");
        for s in series {
            match s.at(n) {
                Some(v) => {
                    let _ = write!(out, "{v:>16.3e}");
                }
                None => {
                    let _ = write!(out, "{:>16}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}
