//! Shared plumbing for the benchmark applications: turning an
//! auto-parallelization plan plus evaluated partitions into a simulator
//! spec, and small helpers for weak-scaling studies.

use partir_core::pipeline::{ParallelPlan, PlannedReduce};
use partir_dpl::partition::Partition;
use partir_dpl::region::{RegionId, Store};
use partir_ir::analysis::AccessKind;
use partir_ir::ast::Loop;
use partir_runtime::sim::{SimAccess, SimKind, SimLoop, SimSpec};
use std::collections::HashMap;

/// Per-loop simulation weights (work units per iteration element).
#[derive(Clone, Debug)]
pub struct LoopWeights(pub Vec<f64>);

impl LoopWeights {
    pub fn uniform(n: usize, w: f64) -> Self {
        LoopWeights(vec![w; n])
    }
}

/// Builds a simulator spec from an auto-parallelization plan: the spec's
/// partitions are exactly the solver's partitions, so the simulated
/// communication reflects what the synthesized DPL program would move.
pub fn sim_spec_from_plan(
    program: &[Loop],
    plan: &ParallelPlan,
    parts: &[Partition],
    store: &Store,
    weights: &LoopWeights,
) -> SimSpec {
    let schema = store.schema();
    let mut region_sizes: HashMap<RegionId, u64> = HashMap::new();
    for (rid, decl) in schema.regions() {
        region_sizes.insert(rid, decl.size);
    }

    let mut loops = Vec::with_capacity(program.len());
    for (li, lp) in program.iter().enumerate() {
        let loop_plan = &plan.loops[li];
        let iter = parts[loop_plan.iter.0 as usize].clone();
        let mut accesses = Vec::new();
        // Accesses sharing one partition share one physical instance (and
        // thus one data movement): deduplicate by (partition, access
        // class), like the runtime would.
        let mut seen: Vec<(u32, u8, Option<u32>)> = Vec::new();
        for ap in &loop_plan.accesses {
            let class: u8 = match (&ap.kind, &ap.reduce) {
                (AccessKind::Read, _) => 0,
                (AccessKind::Write, _) => 1,
                _ => 2,
            };
            let private = match &ap.reduce {
                Some(PlannedReduce::BufferedPrivate { private }) => Some(private.0),
                _ => None,
            };
            let key = (ap.part.0, class, private);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let part = parts[ap.part.0 as usize].clone();
            let region = part.region;
            let kind = match (&ap.kind, &ap.reduce) {
                (AccessKind::Read, _) => SimKind::Read,
                (AccessKind::Write, _) => SimKind::Write,
                (AccessKind::Reduce(_), None) => SimKind::ReduceDirect, // centered
                (AccessKind::Reduce(_), Some(PlannedReduce::Direct))
                | (AccessKind::Reduce(_), Some(PlannedReduce::Guarded)) => SimKind::ReduceDirect,
                (AccessKind::Reduce(_), Some(PlannedReduce::Buffered)) => {
                    SimKind::ReduceBuffered { buffer_sets: part.subregions().to_vec() }
                }
                (AccessKind::Reduce(_), Some(PlannedReduce::BufferedPrivate { private })) => {
                    let ppart = &parts[private.0 as usize];
                    let sets = part
                        .subregions()
                        .iter()
                        .zip(ppart.subregions())
                        .map(|(a, p)| a.difference(p))
                        .collect();
                    SimKind::ReduceBuffered { buffer_sets: sets }
                }
            };
            let expr_weight = pexpr_weight(&plan.partition_exprs[ap.part.0 as usize]);
            accesses.push(SimAccess {
                region,
                part,
                kind,
                bytes_per_elem: 8.0,
                group: None,
                expr_weight,
            });
        }
        loops.push(SimLoop {
            name: lp.name.clone(),
            iter,
            work_per_iter: weights.0[li],
            accesses,
        });
    }

    SimSpec { loops, region_sizes, initial_home: HashMap::new() }
}

/// Operator-node count of a partition expression — the complexity weight
/// the simulator charges for runtime metadata. Externally provided
/// partitions weigh 1.
pub fn pexpr_weight(e: &partir_core::lang::PExpr) -> f64 {
    use partir_core::lang::PExpr;
    match e {
        PExpr::Sym(_) | PExpr::Ext(_) | PExpr::Equal(_) => 1.0,
        PExpr::Image { src, .. } | PExpr::Preimage { src, .. } => 1.0 + pexpr_weight(src),
        PExpr::Union(a, b) | PExpr::Intersect(a, b) | PExpr::Difference(a, b) => {
            1.0 + pexpr_weight(a) + pexpr_weight(b)
        }
    }
}

/// The node counts of the Figure 14 x-axes.
pub const FIG14_NODES: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// One point of a weak-scaling series.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    pub nodes: usize,
    /// App items (non-zeros, points, cells, wires, zones) per second per
    /// node.
    pub throughput_per_node: f64,
}

/// A named weak-scaling series (one line of a Figure 14 plot).
#[derive(Clone, Debug)]
pub struct ScaleSeries {
    pub label: String,
    pub points: Vec<ScalePoint>,
}

impl ScaleSeries {
    /// Parallel efficiency at the largest node count relative to 1 node.
    pub fn efficiency(&self) -> f64 {
        let first = self.points.first().expect("non-empty series");
        let last = self.points.last().expect("non-empty series");
        last.throughput_per_node / first.throughput_per_node
    }

    pub fn at(&self, nodes: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.nodes == nodes)
            .map(|p| p.throughput_per_node)
    }
}

/// Renders series as the rows a Figure 14 subplot plots.
pub fn render_series(title: &str, series: &[ScaleSeries]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:>8}", "nodes");
    for s in series {
        let _ = write!(out, "{:>16}", s.label);
    }
    let _ = writeln!(out);
    let all_nodes: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.nodes).collect())
        .unwrap_or_default();
    for n in all_nodes {
        let _ = write!(out, "{n:>8}");
        for s in series {
            match s.at(n) {
                Some(v) => {
                    let _ = write!(out, "{v:>16.3e}");
                }
                None => {
                    let _ = write!(out, "{:>16}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}
