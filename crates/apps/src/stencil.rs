//! Stencil (Section 6.2 / Figure 14b).
//!
//! A 9-point stencil over a 2D grid (the Parallel Research Kernels
//! stencil). The grid is linearized row-major with periodic boundary
//! (every neighbor is an affine map `i ↦ (i + off) mod N` of the linear
//! index — eight distinct functions, one per neighbor point), so each
//! uncentered read produces a distinct subset constraint and the solver
//! synthesizes eight affine image partitions, exactly as described in the
//! paper.
//!
//! The hand-optimized comparator differs in one way (Section 6.2): it keeps
//! an explicit halo copy so all inter-node movement in each direction is
//! one transfer, where the auto-parallelized version's eight partitions
//! need two transfers per direction. We model that with the simulator's
//! message-consolidation groups; both versions move the same bytes.

use crate::support::{sim_spec_from_plan, LoopWeights, ScalePoint, ScaleSeries, SimSummary};
use partir_core::eval::ExtBindings;
use partir_core::pipeline::{auto_parallelize, Hints, Options, ParallelPlan};
use partir_dpl::func::{FnDef, FnTable, IndexFn};
use partir_dpl::index_set::IndexSet;
use partir_dpl::ops::equal;
use partir_dpl::partition::Partition;
use partir_dpl::region::{FieldId, FieldKind, RegionId, Schema, Store};
use partir_ir::ast::{Loop, LoopBuilder, ReduceOp, VExpr};
use partir_runtime::sim::{simulate, MachineModel, SimAccess, SimKind, SimLoop, SimSpec};
use std::collections::HashMap;

/// The 8 neighbor offsets of a 9-point stencil on an `nx`-wide row-major
/// grid (the center point is the ninth).
fn offsets(nx: i64) -> [i64; 8] {
    [-nx - 1, -nx, -nx + 1, -1, 1, nx - 1, nx, nx + 1]
}

/// A generated stencil instance.
pub struct Stencil {
    pub store: Store,
    pub fns: FnTable,
    pub program: Vec<Loop>,
    pub grid: RegionId,
    pub f_in: FieldId,
    pub f_out: FieldId,
    pub nx: u64,
    pub ny: u64,
}

pub struct StencilParams {
    pub nx: u64,
    pub ny: u64,
}

impl Default for StencilParams {
    fn default() -> Self {
        StencilParams { nx: 100, ny: 100 }
    }
}

impl Stencil {
    pub fn generate(p: &StencilParams) -> Self {
        let n = p.nx * p.ny;
        let mut schema = Schema::new();
        let grid = schema.add_region("Grid", n);
        let f_in = schema.add_field(grid, "in", FieldKind::F64);
        let f_out = schema.add_field(grid, "out", FieldKind::F64);
        let mut fns = FnTable::new();
        let neighbor_fns: Vec<_> = offsets(p.nx as i64)
            .iter()
            .map(|&off| {
                fns.add(
                    format!("n{off:+}"),
                    grid,
                    grid,
                    FnDef::Index(IndexFn::AffineMod { mul: 1, add: off, modulus: n }),
                )
            })
            .collect();

        let mut store = Store::new(schema);
        for (i, v) in store.f64s_mut(f_in).iter_mut().enumerate() {
            *v = ((i % 13) + 1) as f64;
        }

        // Loop 1: out[i] = in[i] + Σ_k w_k · in[n_k(i)].
        let mut b = LoopBuilder::new("stencil", grid);
        let i = b.loop_var();
        let center = b.val_read(grid, f_in, i);
        let mut acc = VExpr::mul(VExpr::Const(4.0), VExpr::var(center));
        for (k, &nf) in neighbor_fns.iter().enumerate() {
            let ni = b.idx_apply(nf, i);
            let v = b.val_read(grid, f_in, ni);
            let w = if k % 2 == 0 { -0.25 } else { -0.5 };
            acc = VExpr::add(acc, VExpr::mul(VExpr::Const(w), VExpr::var(v)));
        }
        b.val_write(grid, f_out, i, acc);
        let l1 = b.finish();

        // Loop 2: in[i] += 1 (the PRK "add roots" step).
        let mut b = LoopBuilder::new("increment", grid);
        let i = b.loop_var();
        b.val_reduce(grid, f_in, i, ReduceOp::Add, VExpr::Const(1.0));
        let l2 = b.finish();

        Stencil { store, fns, program: vec![l1, l2], grid, f_in, f_out, nx: p.nx, ny: p.ny }
    }

    pub fn auto_plan(&self) -> ParallelPlan {
        auto_parallelize(
            &self.program,
            &self.fns,
            self.store.schema(),
            &Hints::new(),
            Options::default(),
        )
        .expect("stencil auto-parallelizes")
    }

    pub fn n_points(&self) -> u64 {
        self.nx * self.ny
    }

    /// The hand-optimized strategy: identical block partitioning, but halo
    /// reads consolidated into one transfer per direction.
    pub fn manual_sim_spec(&self, nodes: usize) -> SimSpec {
        let n = self.n_points();
        let block = equal(self.grid, n, nodes);
        // Halo partitions: the row above and below each block (periodic),
        // extended by one element for the corner offsets.
        let width = self.nx;
        let up = Partition::new(
            self.grid,
            block
                .subregions()
                .iter()
                .map(|s| {
                    let lo = s.min().unwrap_or(0);
                    let start = (lo + n - width - 1) % n;
                    wrap_range(start, width + 1, n)
                })
                .collect(),
        );
        let down = Partition::new(
            self.grid,
            block
                .subregions()
                .iter()
                .map(|s| {
                    let hi = s.max().unwrap_or(0);
                    wrap_range((hi + 1) % n, width + 1, n)
                })
                .collect(),
        );
        let mut region_sizes = HashMap::new();
        region_sizes.insert(self.grid, n);
        SimSpec {
            loops: vec![
                SimLoop {
                    name: "stencil".into(),
                    iter: block.clone(),
                    work_per_iter: 9.0,
                    accesses: vec![
                        SimAccess {
                            region: self.grid,
                            part: block.clone(),
                            kind: SimKind::Read,
                            bytes_per_elem: 8.0,
                            group: None,
                            expr_weight: 1.0,
                        },
                        SimAccess {
                            region: self.grid,
                            part: up,
                            kind: SimKind::Read,
                            bytes_per_elem: 8.0,
                            group: Some(1),
                            expr_weight: 1.0,
                        },
                        SimAccess {
                            region: self.grid,
                            part: down,
                            kind: SimKind::Read,
                            bytes_per_elem: 8.0,
                            group: Some(2),
                            expr_weight: 1.0,
                        },
                        SimAccess {
                            region: self.grid,
                            part: block.clone(),
                            kind: SimKind::Write,
                            bytes_per_elem: 8.0,
                            group: None,
                            expr_weight: 1.0,
                        },
                    ],
                },
                SimLoop {
                    name: "increment".into(),
                    iter: block.clone(),
                    work_per_iter: 1.0,
                    accesses: vec![SimAccess {
                        region: self.grid,
                        part: block,
                        kind: SimKind::ReduceDirect,
                        bytes_per_elem: 8.0,
                        group: None,
                        expr_weight: 1.0,
                    }],
                },
            ],
            region_sizes,
            initial_home: HashMap::new(),
        }
    }
}

/// A wrapped contiguous range `[start, start+len)` on a periodic domain.
fn wrap_range(start: u64, len: u64, n: u64) -> IndexSet {
    if start + len <= n {
        IndexSet::from_range(start, start + len)
    } else {
        IndexSet::from_range(start, n).union(&IndexSet::from_range(0, (start + len) % n))
    }
}

/// Figure 14b: Manual vs Auto weak scaling. `rows_per_node` grid rows per
/// node (weak scaling grows `ny`).
pub fn fig14b_series(nx: u64, rows_per_node: u64, nodes_list: &[usize]) -> Vec<ScaleSeries> {
    let mut manual = Vec::new();
    let mut auto_ = Vec::new();
    for &n in nodes_list {
        let app = Stencil::generate(&StencilParams { nx, ny: rows_per_node * n as u64 });
        let points = app.n_points() as f64;
        let machine = MachineModel::gpu_cluster(n);

        let spec = app.manual_sim_spec(n);
        let res = simulate(&spec, &machine).expect("sim spec is well-formed");
        manual.push(ScalePoint {
            nodes: n,
            throughput_per_node: res.throughput_per_node(points, n),
            sim: SimSummary::from_result(&res, &machine),
        });

        let plan = app.auto_plan();
        let parts = plan.evaluate(&app.store, &app.fns, n, &ExtBindings::new());
        let weights = LoopWeights(vec![9.0, 1.0]);
        let spec = sim_spec_from_plan(&app.program, &plan, &parts, &app.store, &weights);
        let res = simulate(&spec, &machine).expect("sim spec is well-formed");
        auto_.push(ScalePoint {
            nodes: n,
            throughput_per_node: res.throughput_per_node(points, n),
            sim: SimSummary::from_result(&res, &machine),
        });
    }
    vec![
        ScaleSeries { label: "Manual".into(), points: manual },
        ScaleSeries { label: "Auto".into(), points: auto_ },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_runtime::exec::{execute_program, ExecOptions};

    #[test]
    fn stencil_parallel_matches_sequential() {
        let app = Stencil::generate(&StencilParams { nx: 20, ny: 25 });
        let mut seq = app.store.clone();
        // Two outer timesteps to exercise the in/out interplay.
        for _ in 0..2 {
            partir_ir::interp::run_program_seq(&app.program, &mut seq, &app.fns);
        }
        let plan = app.auto_plan();
        let parts = plan.evaluate(&app.store, &app.fns, 4, &ExtBindings::new());
        let mut par = app.store.clone();
        for _ in 0..2 {
            execute_program(
                &app.program,
                &plan,
                &parts,
                &mut par,
                &app.fns,
                &ExecOptions { n_threads: 4, check_legality: true, ..ExecOptions::default() },
            )
            .expect("parallel stencil");
        }
        assert_eq!(seq.f64s(app.f_out), par.f64s(app.f_out));
        assert_eq!(seq.f64s(app.f_in), par.f64s(app.f_in));
    }

    #[test]
    fn auto_plan_has_eight_image_partitions() {
        let app = Stencil::generate(&StencilParams { nx: 16, ny: 16 });
        let plan = app.auto_plan();
        let images = plan
            .partition_exprs
            .iter()
            .filter(|e| matches!(e, partir_core::lang::PExpr::Image { .. }))
            .count();
        assert_eq!(images, 8, "{}", plan.render_dpl(&app.fns));
    }

    #[test]
    fn fig14b_manual_beats_auto_slightly() {
        let series = fig14b_series(256, 256, &[1, 4, 16]);
        let (manual, auto_) = (&series[0], &series[1]);
        // Manual ≥ Auto at scale (fewer messages, simpler partitions),
        // but the gap stays small (paper: ~3%).
        let m16 = manual.at(16).unwrap();
        let a16 = auto_.at(16).unwrap();
        assert!(m16 >= a16, "manual {m16} vs auto {a16}");
        assert!(a16 > 0.85 * m16, "gap should be small: {m16} vs {a16}");
    }
}
