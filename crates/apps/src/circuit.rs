//! Circuit (Section 6.4 / Figure 14d).
//!
//! Electric-current simulation on a randomly generated, clustered circuit
//! graph. Wires carry pointers to their input and output nodes; the main
//! loop reads node voltages uncentered and distributes charge back through
//! two uncentered reductions.
//!
//! The generator follows the paper: circuit nodes form clusters, at most
//! 20% of wires connect nodes in two different clusters, and the *first 1%
//! of entries in the node region* are reserved for the shared
//! (cross-cluster-visible) nodes. That layout is what breaks the unhinted
//! Auto configuration — an `equal` partition of nodes puts all shared nodes
//! in subregion 0, making node 0 a communication bottleneck beyond ~8 nodes
//! (Figure 14d).
//!
//! With the user constraint (`DISJ(pn_private ∪ pn_shared) ∧
//! COMP(pn_private ∪ pn_shared, rn)`, Section 6.4) the auto version uses
//! the generator's cluster-aligned partitions and computes *tight* private
//! sub-partitions, beating the manual version up to 64 nodes because the
//! manual code always buffers the whole shared-node block.

use crate::support::{sim_spec_from_plan, LoopWeights, ScalePoint, ScaleSeries, SimSummary};
use partir_core::eval::ExtBindings;
use partir_core::lang::{FnRef, PExpr};
use partir_core::pipeline::{auto_parallelize, Hints, Options, ParallelPlan};
use partir_dpl::func::{FnId, FnTable};
use partir_dpl::index_set::IndexSet;
use partir_dpl::partition::Partition;
use partir_dpl::region::{FieldId, FieldKind, RegionId, Schema, Store};
use partir_ir::ast::{Loop, LoopBuilder, ReduceOp, VExpr};
use partir_runtime::sim::{simulate, MachineModel, SimAccess, SimKind, SimLoop, SimSpec};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A generated circuit instance.
pub struct Circuit {
    pub store: Store,
    pub fns: FnTable,
    pub program: Vec<Loop>,
    pub rn: RegionId,
    pub rw: RegionId,
    pub voltage: FieldId,
    pub charge: FieldId,
    pub current: FieldId,
    pub in_ptr: FieldId,
    pub out_ptr: FieldId,
    pub f_in: FnId,
    pub f_out: FnId,
    pub n_nodes: u64,
    pub n_wires: u64,
    pub clusters: usize,
    /// Number of shared nodes (the first `n_shared` entries of `rn`).
    pub n_shared: u64,
}

pub struct CircuitParams {
    pub clusters: usize,
    pub nodes_per_cluster: u64,
    pub wires_per_cluster: u64,
    /// Fraction of wires that cross clusters (paper: "a maximum of 20%").
    pub cross_fraction: f64,
    /// Where cross-cluster wires land. `None` (the paper's generator)
    /// targets a uniformly random shared node. `Some(s)` makes every cross
    /// wire of cluster `c` target a *private* node of cluster `(c + s) mod
    /// clusters` — a pairwise interconnect pattern (e.g. a netlist
    /// renumbered by a partitioner) whose communication structure is
    /// invisible to contiguous block placement but trivially exploitable
    /// by cost-driven placement, which co-locates each cluster with its
    /// stride partner. (The shared-node block is too small — 1% of the
    /// region — to carry cluster-resolved structure at color granularity,
    /// so the synthetic variant strides through the private ranges.)
    pub cross_stride: Option<u64>,
    pub seed: u64,
}

impl Default for CircuitParams {
    fn default() -> Self {
        CircuitParams {
            clusters: 4,
            nodes_per_cluster: 1000,
            wires_per_cluster: 4000,
            cross_fraction: 0.2,
            cross_stride: None,
            seed: 20190817,
        }
    }
}

impl Circuit {
    pub fn generate(p: &CircuitParams) -> Self {
        let n_nodes = p.clusters as u64 * p.nodes_per_cluster;
        let n_wires = p.clusters as u64 * p.wires_per_cluster;
        // 1% of node entries are shared, at least one per cluster.
        let n_shared = ((n_nodes / 100).max(p.clusters as u64)).min(n_nodes);
        let shared_per_cluster = n_shared / p.clusters as u64;

        let mut schema = Schema::new();
        let rn = schema.add_region("rn", n_nodes);
        let rw = schema.add_region("rw", n_wires);
        let voltage = schema.add_field(rn, "voltage", FieldKind::F64);
        let charge = schema.add_field(rn, "charge", FieldKind::F64);
        let current = schema.add_field(rw, "current", FieldKind::F64);
        let in_ptr = schema.add_field(rw, "in", FieldKind::Ptr(rn));
        let out_ptr = schema.add_field(rw, "out", FieldKind::Ptr(rn));
        let mut fns = FnTable::new();
        let f_in = fns.add_ptr_field("rw[.].in", rw, rn, in_ptr);
        let f_out = fns.add_ptr_field("rw[.].out", rw, rn, out_ptr);

        let mut store = Store::new(schema);
        let mut rng = rand::rngs::StdRng::seed_from_u64(p.seed);

        // Layout: [shared nodes (cluster-major)] [private of cluster 0]
        // [private of cluster 1] ... The private ranges assume the shared
        // block splits evenly; otherwise the last private range would run
        // past the region and wires would point at nonexistent nodes.
        assert_eq!(
            n_shared % p.clusters as u64,
            0,
            "shared-node block ({n_shared} nodes) must split evenly over {} clusters; \
             pick nodes_per_cluster so clusters divides max(nodes/100, clusters)",
            p.clusters
        );
        let privates_per_cluster = p.nodes_per_cluster - shared_per_cluster;
        let shared_of = |c: usize| -> (u64, u64) {
            let s = c as u64 * shared_per_cluster;
            let e = if c == p.clusters - 1 { n_shared } else { s + shared_per_cluster };
            (s, e)
        };
        let private_of = |c: usize| -> (u64, u64) {
            let s = n_shared + c as u64 * privates_per_cluster;
            (s, s + privates_per_cluster)
        };

        for c in 0..p.clusters {
            let (plo, phi) = shared_of(c);
            let (vlo, vhi) = private_of(c);
            let wire_base = c as u64 * p.wires_per_cluster;
            for w in wire_base..wire_base + p.wires_per_cluster {
                // Input node: a node of this cluster (private or own shared).
                let in_node = if vhi > vlo && rng.gen_bool(0.9) {
                    rng.gen_range(vlo..vhi)
                } else {
                    rng.gen_range(plo..phi)
                };
                // Output node: mostly in-cluster, `cross_fraction` of wires
                // reach a shared node of a random (possibly other) cluster —
                // or, under `cross_stride`, of exactly the stride partner.
                let out_node = if rng.gen_bool(p.cross_fraction) {
                    match p.cross_stride {
                        Some(s) => {
                            let t = (c + s as usize % p.clusters) % p.clusters;
                            let (tlo, thi) = private_of(t);
                            if thi > tlo {
                                rng.gen_range(tlo..thi)
                            } else {
                                let (slo, shi) = shared_of(t);
                                rng.gen_range(slo..shi)
                            }
                        }
                        None => rng.gen_range(0..n_shared),
                    }
                } else if vhi > vlo {
                    rng.gen_range(vlo..vhi)
                } else {
                    rng.gen_range(plo..phi)
                };
                store.ptrs_mut(in_ptr)[w as usize] = in_node;
                store.ptrs_mut(out_ptr)[w as usize] = out_node;
            }
        }
        for v in store.f64s_mut(voltage).iter_mut() {
            *v = rng.gen_range(0..10) as f64;
        }

        let program =
            Self::build_loops(rn, rw, voltage, charge, current, in_ptr, out_ptr, f_in, f_out);
        Circuit {
            store,
            fns,
            program,
            rn,
            rw,
            voltage,
            charge,
            current,
            in_ptr,
            out_ptr,
            f_in,
            f_out,
            n_nodes,
            n_wires,
            clusters: p.clusters,
            n_shared,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_loops(
        rn: RegionId,
        rw: RegionId,
        voltage: FieldId,
        charge: FieldId,
        current: FieldId,
        in_ptr: FieldId,
        out_ptr: FieldId,
        f_in: FnId,
        f_out: FnId,
    ) -> Vec<Loop> {
        // Loop 1 (calc_new_currents): I = (V_in − V_out) / R.
        let mut b = LoopBuilder::new("calc_new_currents", rw);
        let w = b.loop_var();
        let ni = b.idx_read(rw, in_ptr, w, f_in);
        let vi = b.val_read(rn, voltage, ni);
        let no = b.idx_read(rw, out_ptr, w, f_out);
        let vo = b.val_read(rn, voltage, no);
        b.val_write(
            rw,
            current,
            w,
            VExpr::mul(VExpr::Const(0.5), VExpr::sub(VExpr::var(vi), VExpr::var(vo))),
        );
        let l1 = b.finish();

        // Loop 2 (distribute_charge): two uncentered reductions.
        let mut b = LoopBuilder::new("distribute_charge", rw);
        let w = b.loop_var();
        let i = b.val_read(rw, current, w);
        let ni = b.idx_read(rw, in_ptr, w, f_in);
        b.val_reduce(
            rn,
            charge,
            ni,
            ReduceOp::Add,
            VExpr::mul(VExpr::Const(-0.125), VExpr::var(i)),
        );
        let no = b.idx_read(rw, out_ptr, w, f_out);
        b.val_reduce(rn, charge, no, ReduceOp::Add, VExpr::mul(VExpr::Const(0.125), VExpr::var(i)));
        let l2 = b.finish();

        // Loop 3 (update_voltages): V += C·q; q = 0.
        let mut b = LoopBuilder::new("update_voltages", rn);
        let nd = b.loop_var();
        let v = b.val_read(rn, voltage, nd);
        let q = b.val_read(rn, charge, nd);
        b.val_write(
            rn,
            voltage,
            nd,
            VExpr::add(VExpr::var(v), VExpr::mul(VExpr::Const(0.25), VExpr::var(q))),
        );
        b.val_write(rn, charge, nd, VExpr::Const(0.0));
        let l3 = b.finish();

        vec![l1, l2, l3]
    }

    /// The generator's cluster-aligned partitions (`colors` = clusters):
    /// private nodes, owned (private + owned shared), the ghosted access
    /// partition (private + every node the cluster's wires touch), and the
    /// wire partition.
    pub fn cluster_partitions(&self, colors: usize) -> ClusterParts {
        assert_eq!(colors, self.clusters, "one piece per cluster");
        let in_ptrs = self.store.ptrs(self.in_ptr);
        let out_ptrs = self.store.ptrs(self.out_ptr);
        let wires_per = self.n_wires / self.clusters as u64;
        let shared_per = self.n_shared / self.clusters as u64;
        let privates_per = self.n_nodes / self.clusters as u64 - shared_per;
        let mut private = Vec::new();
        let mut owned = Vec::new();
        let mut access = Vec::new();
        let mut wires = Vec::new();
        for c in 0..self.clusters {
            let plo = c as u64 * shared_per;
            let phi = if c == self.clusters - 1 { self.n_shared } else { plo + shared_per };
            let shared_own = IndexSet::from_range(plo, phi);
            let vlo = self.n_shared + c as u64 * privates_per;
            let vhi = vlo + privates_per;
            let priv_set = IndexSet::from_range(vlo, vhi);
            let (wlo, whi) = (c as u64 * wires_per, (c as u64 + 1) * wires_per);
            // Every node touched by this cluster's wires.
            let touched = IndexSet::from_indices(
                (wlo..whi).flat_map(|w| [in_ptrs[w as usize], out_ptrs[w as usize]]),
            );
            private.push(priv_set.clone());
            owned.push(priv_set.union(&shared_own));
            access.push(touched.union(&priv_set));
            wires.push(IndexSet::from_range(wlo, whi));
        }
        ClusterParts {
            private: Partition::new(self.rn, private),
            owned: Partition::new(self.rn, owned),
            access: Partition::new(self.rn, access),
            wires: Partition::new(self.rw, wires),
        }
    }

    /// Auto-parallelization without hints (the Figure 14d "Auto" line).
    pub fn auto_plan(&self) -> ParallelPlan {
        auto_parallelize(
            &self.program,
            &self.fns,
            self.store.schema(),
            &Hints::new(),
            Options::default(),
        )
        .expect("circuit auto-parallelizes")
    }

    /// The Section 6.4 user constraint as builder inputs: the hints and
    /// the concrete external bindings for `colors` pieces, without running
    /// the pipeline (feed these to `partir::Partir`).
    pub fn hint_setup(&self, colors: usize) -> (Hints, ExtBindings) {
        let parts = self.cluster_partitions(colors);
        let mut hints = Hints::new();
        let pw = hints.external("pw", self.rw);
        let pn_acc = hints.external("pn_ghosted", self.rn);
        let pn_all = hints.external("pn_private_u_shared", self.rn);
        let pn_private = hints.external("pn_private", self.rn);
        // image(pw, in, rn) ⊆ pn_ghosted, image(pw, out, rn) ⊆ pn_ghosted.
        hints.fact_subset(
            PExpr::image(PExpr::ext(pw), FnRef::Fn(self.f_in), self.rn),
            PExpr::ext(pn_acc),
        );
        hints.fact_subset(
            PExpr::image(PExpr::ext(pw), FnRef::Fn(self.f_out), self.rn),
            PExpr::ext(pn_acc),
        );
        hints.fact_disj(PExpr::ext(pw));
        hints.fact_comp(PExpr::ext(pw), self.rw);
        // The paper's constraint: DISJ(pn_private ∪ pn_shared) ∧
        // COMP(pn_private ∪ pn_shared, rn) — `pn_all` is that union.
        hints.fact_disj(PExpr::ext(pn_all));
        hints.fact_comp(PExpr::ext(pn_all), self.rn);
        hints.fact_subset(PExpr::ext(pn_private), PExpr::ext(pn_all));
        // pn_private is a valid private sub-partition for rn reductions.
        hints.private_sub(self.rn, PExpr::ext(pn_private));

        let mut exts = ExtBindings::new();
        exts.push(parts.wires.clone());
        exts.push(parts.access.clone());
        exts.push(parts.owned.clone());
        exts.push(parts.private.clone());
        (hints, exts)
    }

    /// Auto-parallelization with the Section 6.4 user constraint
    /// (the "Auto+Hint" line). Returns the plan and the concrete external
    /// bindings for `colors` pieces.
    pub fn hinted_plan(&self, colors: usize) -> (ParallelPlan, Hints, ExtBindings) {
        let (hints, exts) = self.hint_setup(colors);
        let plan = auto_parallelize(
            &self.program,
            &self.fns,
            self.store.schema(),
            &hints,
            Options::default(),
        )
        .expect("circuit auto-parallelizes with hint");
        (plan, hints, exts)
    }

    /// The hand-optimized strategy: cluster partitions, but reduction
    /// buffers always cover the *entire* shared-node block (Section 6.4
    /// explains this is why Auto+Hint beats Manual below 64 nodes).
    pub fn manual_sim_spec(&self, colors: usize) -> SimSpec {
        let parts = self.cluster_partitions(colors);
        let shared_block = IndexSet::from_range(0, self.n_shared);
        let buffer_sets: Vec<IndexSet> = (0..colors).map(|_| shared_block.clone()).collect();
        let mut region_sizes = HashMap::new();
        region_sizes.insert(self.rn, self.n_nodes);
        region_sizes.insert(self.rw, self.n_wires);
        let mut initial_home = HashMap::new();
        initial_home.insert(self.rn, parts.owned.clone());
        initial_home.insert(self.rw, parts.wires.clone());
        SimSpec {
            loops: vec![
                SimLoop {
                    name: "calc_new_currents".into(),
                    iter: parts.wires.clone(),
                    work_per_iter: 6.0,
                    accesses: vec![
                        SimAccess {
                            region: self.rn,
                            part: parts.access.clone(),
                            kind: SimKind::Read,
                            bytes_per_elem: 8.0,
                            group: None,
                            expr_weight: 1.0,
                        },
                        SimAccess {
                            region: self.rw,
                            part: parts.wires.clone(),
                            kind: SimKind::Write,
                            bytes_per_elem: 8.0,
                            group: None,
                            expr_weight: 1.0,
                        },
                    ],
                },
                SimLoop {
                    name: "distribute_charge".into(),
                    iter: parts.wires.clone(),
                    work_per_iter: 4.0,
                    accesses: vec![
                        SimAccess {
                            region: self.rw,
                            part: parts.wires.clone(),
                            kind: SimKind::Read,
                            bytes_per_elem: 8.0,
                            group: None,
                            expr_weight: 1.0,
                        },
                        SimAccess {
                            region: self.rn,
                            part: parts.access.clone(),
                            kind: SimKind::ReduceBuffered { buffer_sets },
                            bytes_per_elem: 8.0,
                            group: None,
                            expr_weight: 1.0,
                        },
                    ],
                },
                SimLoop {
                    name: "update_voltages".into(),
                    iter: parts.owned.clone(),
                    work_per_iter: 4.0,
                    accesses: vec![SimAccess {
                        region: self.rn,
                        part: parts.owned.clone(),
                        kind: SimKind::Write,
                        bytes_per_elem: 16.0,
                        group: None,
                        expr_weight: 1.0,
                    }],
                },
            ],
            region_sizes,
            initial_home,
        }
    }
}

/// The generator's cluster-aligned partitions.
pub struct ClusterParts {
    /// Private nodes per cluster (disjoint).
    pub private: Partition,
    /// Private + owned shared nodes (disjoint, complete).
    pub owned: Partition,
    /// Private + every touched node (overlapping "ghosted" access).
    pub access: Partition,
    /// Wires per cluster (disjoint, complete).
    pub wires: Partition,
}

/// Figure 14d: Manual vs Auto+Hint vs Auto weak scaling (clusters = nodes).
pub fn fig14d_series(
    nodes_per_cluster: u64,
    wires_per_cluster: u64,
    nodes_list: &[usize],
) -> Vec<ScaleSeries> {
    let mut manual = Vec::new();
    let mut hinted = Vec::new();
    let mut auto_ = Vec::new();
    for &n in nodes_list {
        let app = Circuit::generate(&CircuitParams {
            clusters: n,
            nodes_per_cluster,
            wires_per_cluster,
            cross_fraction: 0.2,
            cross_stride: None,
            seed: 20190817 + n as u64,
        });
        let items = app.n_wires as f64;
        let machine = MachineModel::gpu_cluster(n);
        let weights = LoopWeights(vec![6.0, 4.0, 4.0]);

        let res =
            simulate(&app.manual_sim_spec(n), &machine).expect("manual sim spec is well-formed");
        manual.push(ScalePoint {
            nodes: n,
            throughput_per_node: res.throughput_per_node(items, n),
            sim: SimSummary::from_result(&res, &machine),
        });

        let (plan, _, exts) = app.hinted_plan(n);
        let parts = plan.evaluate(&app.store, &app.fns, n, &exts);
        let spec = sim_spec_from_plan(&app.program, &plan, &parts, &app.store, &weights);
        let res = simulate(&spec, &machine).expect("sim spec is well-formed");
        hinted.push(ScalePoint {
            nodes: n,
            throughput_per_node: res.throughput_per_node(items, n),
            sim: SimSummary::from_result(&res, &machine),
        });

        let plan = app.auto_plan();
        let parts = plan.evaluate(&app.store, &app.fns, n, &ExtBindings::new());
        let spec = sim_spec_from_plan(&app.program, &plan, &parts, &app.store, &weights);
        let res = simulate(&spec, &machine).expect("sim spec is well-formed");
        auto_.push(ScalePoint {
            nodes: n,
            throughput_per_node: res.throughput_per_node(items, n),
            sim: SimSummary::from_result(&res, &machine),
        });
    }
    vec![
        ScaleSeries { label: "Manual".into(), points: manual },
        ScaleSeries { label: "Auto+Hint".into(), points: hinted },
        ScaleSeries { label: "Auto".into(), points: auto_ },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_core::pipeline::PlannedReduce;
    use partir_runtime::exec::{execute_program, ExecOptions};

    fn small() -> Circuit {
        Circuit::generate(&CircuitParams {
            clusters: 4,
            nodes_per_cluster: 200,
            wires_per_cluster: 600,
            cross_fraction: 0.2,
            cross_stride: None,
            seed: 7,
        })
    }

    #[test]
    fn generator_layout_invariants() {
        let app = small();
        assert_eq!(app.n_nodes, 800);
        assert_eq!(app.n_shared, 8);
        let parts = app.cluster_partitions(4);
        assert!(parts.owned.is_disjoint());
        assert!(parts.owned.is_complete(app.n_nodes));
        assert!(parts.private.is_disjoint());
        assert!(parts.wires.is_disjoint() && parts.wires.is_complete(app.n_wires));
        // The access partition contains the private sets.
        assert!(parts.private.subset_of(&parts.access));
        // The hint facts hold on the real data: images of the wire
        // partition land inside the access partition.
        let img_in = partir_dpl::ops::image(&app.store, &app.fns, &parts.wires, app.f_in, app.rn);
        let img_out = partir_dpl::ops::image(&app.store, &app.fns, &parts.wires, app.f_out, app.rn);
        assert!(img_in.subset_of(&parts.access));
        assert!(img_out.subset_of(&parts.access));
    }

    #[test]
    fn strided_cross_wires_target_only_the_partner_cluster() {
        let p = CircuitParams {
            clusters: 4,
            nodes_per_cluster: 200,
            wires_per_cluster: 600,
            cross_fraction: 0.2,
            cross_stride: Some(2),
            seed: 7,
        };
        let app = Circuit::generate(&p);
        let shared_per = app.n_shared / app.clusters as u64;
        let privates_per = p.nodes_per_cluster - shared_per;
        let out_ptrs = app.store.ptrs(app.out_ptr);
        let private_of = |c: usize| -> (u64, u64) {
            let s = app.n_shared + c as u64 * privates_per;
            (s, s + privates_per)
        };
        let mut cross = 0u64;
        for c in 0..app.clusters {
            let (vlo, vhi) = private_of(c);
            let (plo, phi) = (c as u64 * shared_per, (c as u64 + 1) * shared_per);
            let (tlo, thi) = private_of((c + 2) % app.clusters);
            let wire_base = c as u64 * p.wires_per_cluster;
            for w in wire_base..wire_base + p.wires_per_cluster {
                let o = out_ptrs[w as usize];
                let own = (vlo..vhi).contains(&o) || (plo..phi).contains(&o);
                if !own {
                    assert!(
                        (tlo..thi).contains(&o),
                        "cluster {c} wire leaked to node {o} outside the stride partner"
                    );
                    cross += 1;
                }
            }
        }
        assert!(cross > 0, "some wires must cross");

        // Still bit-identical to sequential under the auto plan.
        let mut seq = app.store.clone();
        partir_ir::interp::run_program_seq(&app.program, &mut seq, &app.fns);
        let plan = app.auto_plan();
        let parts = plan.evaluate(&app.store, &app.fns, 4, &ExtBindings::new());
        let mut par = app.store.clone();
        execute_program(
            &app.program,
            &plan,
            &parts,
            &mut par,
            &app.fns,
            &ExecOptions { n_threads: 4, check_legality: true, ..ExecOptions::default() },
        )
        .expect("strided circuit runs");
        assert_eq!(seq.f64s(app.voltage), par.f64s(app.voltage));
    }

    #[test]
    fn auto_without_hint_parallel_matches_sequential() {
        let app = small();
        let mut seq = app.store.clone();
        for _ in 0..2 {
            partir_ir::interp::run_program_seq(&app.program, &mut seq, &app.fns);
        }
        let plan = app.auto_plan();
        let parts = plan.evaluate(&app.store, &app.fns, 4, &ExtBindings::new());
        let mut par = app.store.clone();
        for _ in 0..2 {
            execute_program(
                &app.program,
                &plan,
                &parts,
                &mut par,
                &app.fns,
                &ExecOptions { n_threads: 4, check_legality: true, ..ExecOptions::default() },
            )
            .expect("parallel circuit");
        }
        assert_eq!(seq.f64s(app.voltage), par.f64s(app.voltage));
    }

    #[test]
    fn hinted_plan_uses_externals_and_private_subpartition() {
        let app = small();
        let (plan, _, exts) = app.hinted_plan(4);
        // External partitions appear in the plan.
        let uses_ext = plan.partition_exprs.iter().any(|e| matches!(e, PExpr::Ext(_)));
        assert!(uses_ext, "{}", plan.render_dpl(&app.fns));
        // The charge reductions are buffered with the private
        // sub-partition, not relaxed.
        assert!(!plan.loops[1].relaxed, "hinted region is not relaxed");
        let reduce_modes: Vec<_> =
            plan.loops[1].accesses.iter().filter_map(|a| a.reduce.clone()).collect();
        assert!(
            reduce_modes.iter().any(|m| matches!(m, PlannedReduce::BufferedPrivate { .. })),
            "{reduce_modes:?}"
        );

        // Execution under the hinted plan stays correct, with buffers far
        // smaller than the full node region.
        let mut seq = app.store.clone();
        partir_ir::interp::run_program_seq(&app.program, &mut seq, &app.fns);
        let parts = plan.evaluate(&app.store, &app.fns, 4, &exts);
        let mut par = app.store.clone();
        let report = execute_program(
            &app.program,
            &plan,
            &parts,
            &mut par,
            &app.fns,
            &ExecOptions { n_threads: 4, check_legality: true, ..ExecOptions::default() },
        )
        .expect("parallel hinted circuit");
        assert_eq!(seq.f64s(app.voltage), par.f64s(app.voltage));
        assert!(report.buffer_bytes > 0, "buffered reductions present");
        assert!(
            report.buffer_bytes < app.n_nodes * 8,
            "buffers cover only the shared remainder: {} bytes",
            report.buffer_bytes
        );
    }

    #[test]
    fn fig14d_auto_collapses_hint_tracks_manual() {
        let series = fig14d_series(500, 2000, &[1, 4, 16]);
        let (manual, hinted, auto_) = (&series[0], &series[1], &series[2]);
        let m16 = manual.at(16).unwrap();
        let h16 = hinted.at(16).unwrap();
        let a16 = auto_.at(16).unwrap();
        // Auto falls well behind at 16 nodes; Hint stays in Manual's range.
        assert!(a16 < 0.7 * m16, "auto collapses: {a16} vs manual {m16}");
        assert!(h16 > 0.75 * m16, "hint tracks manual: {h16} vs {m16}");
    }
}
