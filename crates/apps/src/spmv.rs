//! SpMV microbenchmark (Figure 10 / Section 6.1).
//!
//! CSR sparse matrix–vector product `Y = Mat · X`. The paper's experiment
//! uses a diagonal (banded) matrix with a fixed number of non-zeros per
//! row, which makes the auto-partitioned code perfectly balanced — Figure
//! 14a reports 99% parallel efficiency at 256 nodes, Auto only (there is no
//! hand-optimized comparator for this microbenchmark).
//!
//! The loop exercises the generalized `IMAGE` operator (Section 4): the
//! inner loop's iteration space is the CSR row range, a set-valued function
//! of the outer index.

use crate::support::{sim_spec_from_plan, LoopWeights, ScalePoint, ScaleSeries, SimSummary};
use partir_core::eval::ExtBindings;
use partir_core::pipeline::{auto_parallelize, Hints, Options, ParallelPlan};
use partir_dpl::func::{FnId, FnTable};
use partir_dpl::region::{FieldId, FieldKind, RegionId, Schema, Store};
use partir_ir::ast::{Loop, LoopBuilder, ReduceOp, VExpr};
use partir_runtime::sim::{simulate, MachineModel};

/// A generated SpMV instance.
pub struct Spmv {
    pub store: Store,
    pub fns: FnTable,
    pub program: Vec<Loop>,
    pub y: RegionId,
    pub x: RegionId,
    pub mat: RegionId,
    pub yv: FieldId,
    pub xv: FieldId,
    pub nnz: u64,
    pub rows: u64,
}

/// Parameters: `rows`, band half-width `halo` (nnz/row = 2·halo+1), and an
/// optional `band_shift` displacing the band off the diagonal.
pub struct SpmvParams {
    pub rows: u64,
    pub halo: u64,
    /// Row `i` reads columns centered at `(i + band_shift) mod rows`
    /// instead of `i`, with periodic wrap. `0` keeps the paper's clipped
    /// on-diagonal band. A large shift (e.g. `rows/2`) models a renumbered
    /// matrix whose index order is misaligned with its communication
    /// structure: block placement then ships nearly every X read
    /// cross-rank, while cost-driven placement can co-locate each row
    /// block with the column block it actually reads.
    pub band_shift: u64,
}

impl Default for SpmvParams {
    fn default() -> Self {
        SpmvParams { rows: 10_000, halo: 2, band_shift: 0 }
    }
}

impl Spmv {
    /// Builds the banded matrix of the paper's experiment: row `i` has
    /// non-zeros in columns `i−halo ..= i+halo` (clipped), so every row
    /// has (almost) the same count and the matrix is block-local. With
    /// `band_shift > 0` the band is centered at `(i + shift) mod rows`
    /// (periodic, exactly `2·halo+1` nnz per row) — same work, scrambled
    /// locality.
    pub fn generate(p: &SpmvParams) -> Self {
        let rows = p.rows;
        let shift = if rows == 0 { 0 } else { p.band_shift % rows };
        // Count nnz first. Clipped [lo, hi) window for the on-diagonal
        // band; the shifted band instead enumerates the periodic window
        // `(i + shift − halo ..= i + shift + halo) mod rows`.
        let nnz_of = |i: u64| -> (u64, u64) {
            let lo = i.saturating_sub(p.halo);
            let hi = (i + p.halo + 1).min(rows);
            (lo, hi)
        };
        let nnz: u64 = if shift > 0 {
            rows * (2 * p.halo + 1).min(rows)
        } else {
            (0..rows)
                .map(|i| {
                    let (l, h) = nnz_of(i);
                    h - l
                })
                .sum()
        };

        let mut schema = Schema::new();
        let mat = schema.add_region("Mat", nnz);
        let x = schema.add_region("X", rows);
        let y = schema.add_region("Y", rows);
        let yv = schema.add_field(y, "val", FieldKind::F64);
        let range_f = schema.add_field(y, "range", FieldKind::Range(mat));
        let mval = schema.add_field(mat, "val", FieldKind::F64);
        let mind = schema.add_field(mat, "ind", FieldKind::Ptr(x));
        let xv = schema.add_field(x, "val", FieldKind::F64);

        let mut fns = FnTable::new();
        let ranges = fns.add_range_field("Ranges", y, mat, range_f);
        let ind = fns.add_ptr_field("Mat[.].ind", mat, x, mind);

        let mut store = Store::new(schema);
        let mut k = 0u64;
        for i in 0..rows {
            let start = k;
            if shift > 0 {
                let w = (2 * p.halo + 1).min(rows);
                let center = (i + shift) % rows;
                let first = (center + rows - p.halo.min(rows - 1)) % rows;
                for o in 0..w {
                    let j = (first + o) % rows;
                    store.ptrs_mut(mind)[k as usize] = j;
                    store.f64s_mut(mval)[k as usize] = 1.0 + ((i + j) % 5) as f64;
                    k += 1;
                }
            } else {
                let (lo, hi) = nnz_of(i);
                for j in lo..hi {
                    store.ptrs_mut(mind)[k as usize] = j;
                    store.f64s_mut(mval)[k as usize] = 1.0 + ((i + j) % 5) as f64;
                    k += 1;
                }
            }
            store.ranges_mut(range_f)[i as usize] = (start, k);
        }
        for (j, v) in store.f64s_mut(xv).iter_mut().enumerate() {
            *v = 1.0 + (j % 7) as f64;
        }

        let program = vec![Self::build_loop(y, mat, x, yv, range_f, mval, mind, xv, ranges, ind)];
        Spmv { store, fns, program, y, x, mat, yv, xv, nnz, rows }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_loop(
        y: RegionId,
        mat: RegionId,
        x: RegionId,
        yv: FieldId,
        _range_f: FieldId,
        mval: FieldId,
        mind: FieldId,
        xv: FieldId,
        ranges: FnId,
        ind: FnId,
    ) -> Loop {
        // for i in Y: for k in Ranges(i): Y[i] += Mat[k].val * X[Mat[k].ind]
        let mut b = LoopBuilder::new("spmv", y);
        let i = b.loop_var();
        let k = b.begin_for_each(ranges, i);
        let a = b.val_read(mat, mval, k);
        let col = b.idx_read(mat, mind, k, ind);
        let xval = b.val_read(x, xv, col);
        b.val_reduce(y, yv, i, ReduceOp::Add, VExpr::mul(VExpr::var(a), VExpr::var(xval)));
        b.end_for_each();
        b.finish()
    }

    /// Auto-parallelizes (no hints, as in the paper).
    pub fn auto_plan(&self) -> ParallelPlan {
        auto_parallelize(
            &self.program,
            &self.fns,
            self.store.schema(),
            &Hints::new(),
            Options::default(),
        )
        .expect("SpMV auto-parallelizes")
    }

    /// Reference sequential result.
    pub fn run_sequential(&self) -> Vec<f64> {
        let mut store = self.store.clone();
        partir_ir::interp::run_program_seq(&self.program, &mut store, &self.fns);
        store.f64s(self.yv).to_vec()
    }
}

/// Figure 14a: weak-scaling of the Auto configuration. `rows_per_node`
/// scales the matrix with node count (the paper used 0.4e9 nnz/node on
/// real hardware; the simulator default is scaled down — shapes, not
/// magnitudes, are the target).
pub fn fig14a_series(rows_per_node: u64, nodes_list: &[usize]) -> ScaleSeries {
    fig14a_series_with(rows_per_node, nodes_list, "Auto", None)
}

/// Figure 14a overlay: the same Auto configuration priced under a
/// node-failure model (checkpoint overhead + expected recompute of lost
/// subregions), showing how much of the weak-scaling headroom failures
/// consume at large node counts.
pub fn fig14a_faults_series(
    rows_per_node: u64,
    nodes_list: &[usize],
    fm: partir_runtime::sim::FailureModel,
) -> ScaleSeries {
    fig14a_series_with(rows_per_node, nodes_list, "Auto+faults", Some(fm))
}

fn fig14a_series_with(
    rows_per_node: u64,
    nodes_list: &[usize],
    label: &str,
    fm: Option<partir_runtime::sim::FailureModel>,
) -> ScaleSeries {
    let mut points = Vec::new();
    for &n in nodes_list {
        let app = Spmv::generate(&SpmvParams {
            rows: rows_per_node * n as u64,
            halo: 2,
            ..SpmvParams::default()
        });
        let plan = app.auto_plan();
        let parts = plan.evaluate(&app.store, &app.fns, n, &ExtBindings::new());
        let flops_per_row = 2.0 * (app.nnz as f64) / (app.rows as f64);
        let weights = LoopWeights::uniform(app.program.len(), flops_per_row);
        let spec = sim_spec_from_plan(&app.program, &plan, &parts, &app.store, &weights);
        let mut m = MachineModel::gpu_cluster(n);
        m.failure = fm;
        let res = simulate(&spec, &m).expect("SpMV sim spec is well-formed");
        points.push(ScalePoint {
            nodes: n,
            throughput_per_node: res.throughput_per_node(app.nnz as f64, n),
            sim: SimSummary::from_result(&res, &m),
        });
    }
    ScaleSeries { label: label.into(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_runtime::exec::{execute_program, ExecOptions};

    #[test]
    fn spmv_parallel_matches_sequential() {
        let app = Spmv::generate(&SpmvParams { rows: 500, halo: 2, ..SpmvParams::default() });
        let expected = app.run_sequential();
        let plan = app.auto_plan();
        let parts = plan.evaluate(&app.store, &app.fns, 4, &ExtBindings::new());
        let mut store = app.store.clone();
        execute_program(
            &app.program,
            &plan,
            &parts,
            &mut store,
            &app.fns,
            &ExecOptions { n_threads: 4, check_legality: true, ..ExecOptions::default() },
        )
        .expect("parallel execution");
        assert_eq!(store.f64s(app.yv), &expected[..]);
    }

    #[test]
    fn shifted_band_matches_sequential_with_uniform_rows() {
        let app = Spmv::generate(&SpmvParams { rows: 512, halo: 2, band_shift: 256 });
        // Periodic band: exactly 2·halo+1 nnz per row, no edge clipping.
        assert_eq!(app.nnz, 512 * 5);
        let expected = app.run_sequential();
        let plan = app.auto_plan();
        let parts = plan.evaluate(&app.store, &app.fns, 4, &ExtBindings::new());
        let mut store = app.store.clone();
        execute_program(
            &app.program,
            &plan,
            &parts,
            &mut store,
            &app.fns,
            &ExecOptions { n_threads: 4, check_legality: true, ..ExecOptions::default() },
        )
        .expect("shifted-band parallel execution");
        assert_eq!(store.f64s(app.yv), &expected[..]);
        // The shift really moved the band: row 0 must read around column 256.
        let mind = app.store.schema().field_by_name(app.mat, "ind").unwrap();
        let cols = app.store.ptrs(mind);
        assert!(cols[..5].iter().all(|&j| (254..=258).contains(&j)), "{:?}", &cols[..5]);
    }

    #[test]
    fn spmv_plan_uses_image_chain() {
        // Figure 10b: P1 = equal(Y); P2 = IMAGE-chain partitions of Mat/X.
        let app = Spmv::generate(&SpmvParams { rows: 100, halo: 1, ..SpmvParams::default() });
        let plan = app.auto_plan();
        let dpl = plan.render_dpl(&app.fns);
        assert!(dpl.contains("equal"), "{dpl}");
        assert!(dpl.contains("image"), "{dpl}");
    }

    #[test]
    fn fig14a_faults_overlay_costs_throughput() {
        let fm = partir_runtime::sim::FailureModel::commodity();
        let plain = fig14a_series(20_000, &[1, 16]);
        let faulty = fig14a_faults_series(20_000, &[1, 16], fm);
        assert_eq!(faulty.label, "Auto+faults");
        for (p, f) in plain.points.iter().zip(&faulty.points) {
            assert!(
                f.throughput_per_node < p.throughput_per_node,
                "failure model must cost throughput at {} nodes",
                p.nodes
            );
            assert!(f.sim.expected_iteration_time_s > f.sim.iteration_time_s);
            assert_eq!(f.sim.iteration_time_s, p.sim.iteration_time_s);
        }
    }

    #[test]
    fn fig14a_scales_nearly_flat() {
        let series = fig14a_series(20_000, &[1, 4, 16]);
        // The banded matrix makes Auto essentially perfectly scalable
        // (99% efficiency in the paper; the simulator should stay >90%
        // even at modest per-node sizes).
        assert!(series.efficiency() > 0.90, "expected near-flat weak scaling, got {:?}", series);
    }
}
