//! # partir-apps — the paper's five benchmark applications
//!
//! Each application module provides: a deterministic workload generator, the
//! sequential loop IR that the auto-parallelizer consumes, the app's hint
//! sets (Section 6's Auto+Hint configurations), a hand-optimized simulation
//! strategy mirroring the published manual implementations, and the weak-
//! scaling series of its Figure 14 subplot.

pub mod circuit;
pub mod miniaero;
pub mod pennant;
pub mod spmv;
pub mod stencil;
pub mod support;
