//! PENNANT (Section 6.5 / Figure 14e).
//!
//! A proxy for Lagrangian hydrodynamics on a 2D quadrilateral mesh: each
//! zone consists of four sides; each side carries five pointers — previous
//! and next side in the same zone (`mapss3`/`mapss4`), the zone (`mapsz`),
//! and the two endpoint points (`mapsp1`/`mapsp2`) — exactly the access
//! structure the paper describes.
//!
//! The mesh generator mirrors PENNANT's: the mesh is split into vertical
//! *pieces*; points shared between pieces live in the *initial entries* of
//! the point region. That layout makes the unhinted Auto configuration
//! collapse beyond a few nodes (all shared points land in the first `equal`
//! subregion). The paper evaluates four configurations:
//!
//! * **Auto** — no hints; drops off after 4 nodes;
//! * **Auto+Hint1** — an external constraint describing the point
//!   partitioning; matches Manual up to ~32 nodes, then struggles because
//!   the solver-derived partitions are deeply-derived/fragmented (runtime
//!   metadata);
//! * **Auto+Hint2** — additionally reuses the generator's side and zone
//!   partitions (including the *recursive* side-neighbor constraints) and
//!   provides the private-point partition as a private sub-partition; no
//!   noticeable difference from Manual;
//! * **Manual** — the hand-optimized strategy.

use crate::support::{sim_spec_from_plan, LoopWeights, ScalePoint, ScaleSeries, SimSummary};
use partir_core::eval::ExtBindings;
use partir_core::lang::{FnRef, PExpr};
use partir_core::pipeline::{auto_parallelize, Hints, Options, ParallelPlan};
use partir_dpl::func::{FnId, FnTable};
use partir_dpl::index_set::IndexSet;
use partir_dpl::partition::Partition;
use partir_dpl::region::{FieldId, FieldKind, RegionId, Schema, Store};
use partir_ir::ast::{Loop, LoopBuilder, ReduceOp, VExpr};
use partir_runtime::sim::{simulate, MachineModel, SimAccess, SimKind, SimLoop, SimSpec};
use std::collections::HashMap;

/// Which hint set to use (the four Figure 14e configurations).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PennantConfig {
    Auto,
    Hint1,
    Hint2,
}

/// A generated PENNANT instance.
pub struct Pennant {
    pub store: Store,
    pub fns: FnTable,
    pub program: Vec<Loop>,
    pub rz: RegionId,
    pub rs: RegionId,
    pub rp: RegionId,
    pub px: FieldId,
    pub pf: FieldId,
    pub vol: FieldId,
    pub f_mapsz: FnId,
    pub f_mapsp1: FnId,
    pub f_mapsp2: FnId,
    pub f_mapss3: FnId,
    pub f_mapss4: FnId,
    pub n_zones: u64,
    pub n_sides: u64,
    pub n_points: u64,
    pub pieces: usize,
    /// Per-piece index sets computed by the generator.
    piece_zones: Vec<IndexSet>,
    piece_sides: Vec<IndexSet>,
    piece_points_owned: Vec<IndexSet>,
    piece_points_private: Vec<IndexSet>,
    piece_points_access: Vec<IndexSet>,
}

pub struct PennantParams {
    pub pieces: usize,
    /// Zones per piece in x.
    pub zw: u64,
    /// Zones in y.
    pub zy: u64,
}

impl Default for PennantParams {
    fn default() -> Self {
        PennantParams { pieces: 4, zw: 8, zy: 8 }
    }
}

impl Pennant {
    pub fn generate(p: &PennantParams) -> Self {
        let zx = p.pieces as u64 * p.zw;
        let n_zones = zx * p.zy;
        let n_sides = 4 * n_zones;
        let py = p.zy + 1;
        let n_points = (zx + 1) * py;

        // ---- Point numbering: shared (internal piece-boundary) columns
        // first, ordered by column then row; then private points
        // piece-major. ----
        let is_shared_col = |c: u64| -> bool { c.is_multiple_of(p.zw) && c != 0 && c != zx };
        let mut point_id = vec![u64::MAX; n_points as usize];
        let flat = |c: u64, r: u64| -> usize { (c * py + r) as usize };
        let mut next = 0u64;
        let mut shared_count = 0u64;
        for c in 0..=zx {
            if is_shared_col(c) {
                for r in 0..py {
                    point_id[flat(c, r)] = next;
                    next += 1;
                }
                shared_count += py;
            }
        }
        // Private points, piece-major: piece k owns columns
        // [k·zw .. (k+1)·zw] minus internal boundary columns it doesn't own
        // (a shared column belongs to the piece on its right).
        let col_piece = |c: u64| -> usize {
            if c == zx {
                p.pieces - 1
            } else {
                (c / p.zw) as usize
            }
        };
        for k in 0..p.pieces {
            for c in 0..=zx {
                if col_piece(c) == k && !is_shared_col(c) {
                    for r in 0..py {
                        point_id[flat(c, r)] = next;
                        next += 1;
                    }
                }
            }
        }
        assert_eq!(next, n_points);

        // ---- Regions and fields. ----
        let mut schema = Schema::new();
        let rz = schema.add_region("rz", n_zones);
        let rs = schema.add_region("rs", n_sides);
        let rp = schema.add_region("rp", n_points);
        let vol = schema.add_field(rz, "vol", FieldKind::F64);
        let energy = schema.add_field(rz, "energy", FieldKind::F64);
        let px = schema.add_field(rp, "px", FieldKind::F64);
        let pf = schema.add_field(rp, "pf", FieldKind::F64);
        let len = schema.add_field(rs, "len", FieldKind::F64);
        let area = schema.add_field(rs, "area", FieldKind::F64);
        let mapsz = schema.add_field(rs, "mapsz", FieldKind::Ptr(rz));
        let mapsp1 = schema.add_field(rs, "mapsp1", FieldKind::Ptr(rp));
        let mapsp2 = schema.add_field(rs, "mapsp2", FieldKind::Ptr(rp));
        let mapss3 = schema.add_field(rs, "mapss3", FieldKind::Ptr(rs));
        let mapss4 = schema.add_field(rs, "mapss4", FieldKind::Ptr(rs));
        let mut fns = FnTable::new();
        let f_mapsz = fns.add_ptr_field("rs[.].mapsz", rs, rz, mapsz);
        let f_mapsp1 = fns.add_ptr_field("rs[.].mapsp1", rs, rp, mapsp1);
        let f_mapsp2 = fns.add_ptr_field("rs[.].mapsp2", rs, rp, mapsp2);
        let f_mapss3 = fns.add_ptr_field("rs[.].mapss3", rs, rs, mapss3);
        let f_mapss4 = fns.add_ptr_field("rs[.].mapss4", rs, rs, mapss4);

        let mut store = Store::new(schema);

        // ---- Zones and sides, piece-major. ----
        // Zone ordering: piece-major, then column-major within the piece.
        let mut piece_zones = vec![Vec::new(); p.pieces];
        let mut zone_of = HashMap::new();
        let mut z_next = 0u64;
        for (k, zones) in piece_zones.iter_mut().enumerate() {
            for lc in 0..p.zw {
                let c = k as u64 * p.zw + lc;
                for r in 0..p.zy {
                    zone_of.insert((c, r), z_next);
                    zones.push(z_next);
                    z_next += 1;
                }
            }
        }
        for k in 0..p.pieces {
            for lc in 0..p.zw {
                let c = k as u64 * p.zw + lc;
                for r in 0..p.zy {
                    let z = zone_of[&(c, r)];
                    // Corners counter-clockwise.
                    let corners = [
                        point_id[flat(c, r)],
                        point_id[flat(c + 1, r)],
                        point_id[flat(c + 1, r + 1)],
                        point_id[flat(c, r + 1)],
                    ];
                    for side in 0..4u64 {
                        let s = 4 * z + side;
                        store.ptrs_mut(mapsz)[s as usize] = z;
                        store.ptrs_mut(mapsp1)[s as usize] = corners[side as usize];
                        store.ptrs_mut(mapsp2)[s as usize] = corners[((side + 1) % 4) as usize];
                        store.ptrs_mut(mapss3)[s as usize] = 4 * z + (side + 3) % 4;
                        store.ptrs_mut(mapss4)[s as usize] = 4 * z + (side + 1) % 4;
                    }
                }
            }
        }
        for (i, v) in store.f64s_mut(px).iter_mut().enumerate() {
            *v = 1.0 + (i % 11) as f64;
        }

        // ---- Per-piece index sets. ----
        let piece_zone_sets: Vec<IndexSet> =
            piece_zones.iter().map(|zs| IndexSet::from_indices(zs.iter().copied())).collect();
        let piece_side_sets: Vec<IndexSet> = piece_zones
            .iter()
            .map(|zs| IndexSet::from_indices(zs.iter().flat_map(|&z| (4 * z)..(4 * z + 4))))
            .collect();
        let mut piece_points_owned = Vec::new();
        let mut piece_points_private = Vec::new();
        let mut piece_points_access = Vec::new();
        for k in 0..p.pieces {
            let mut owned = Vec::new();
            let mut private = Vec::new();
            for c in 0..=zx {
                if col_piece(c) == k || (is_shared_col(c) && col_piece(c) == k) {
                    for r in 0..py {
                        let id = point_id[flat(c, r)];
                        owned.push(id);
                        if !is_shared_col(c) {
                            private.push(id);
                        }
                    }
                }
            }
            // Access = all corners of the piece's zones.
            let mut access = Vec::new();
            for lc in 0..p.zw {
                let c = k as u64 * p.zw + lc;
                for r in 0..p.zy {
                    for (dc, dr) in [(0, 0), (1, 0), (1, 1), (0, 1)] {
                        access.push(point_id[flat(c + dc, r + dr)]);
                    }
                }
            }
            piece_points_owned.push(IndexSet::from_indices(owned));
            piece_points_private.push(IndexSet::from_indices(private));
            piece_points_access.push(IndexSet::from_indices(access));
        }
        let _ = shared_count;

        let fields = PennantFields {
            rz,
            rs,
            rp,
            vol,
            energy,
            px,
            pf,
            len,
            area,
            mapsz,
            mapsp1,
            mapsp2,
            mapss3,
            f_mapsz,
            f_mapsp1,
            f_mapsp2,
            f_mapss3,
            f_mapss4,
        };
        let program = Self::build_loops(&fields);

        Pennant {
            store,
            fns,
            program,
            rz,
            rs,
            rp,
            px,
            pf,
            vol,
            f_mapsz,
            f_mapsp1,
            f_mapsp2,
            f_mapss3,
            f_mapss4,
            n_zones,
            n_sides,
            n_points,
            pieces: p.pieces,
            piece_zones: piece_zone_sets,
            piece_sides: piece_side_sets,
            piece_points_owned,
            piece_points_private,
            piece_points_access,
        }
    }

    fn build_loops(f: &PennantFields) -> Vec<Loop> {
        // Loop 1 (calc_lengths): side length from its two endpoints.
        let mut b = LoopBuilder::new("calc_lengths", f.rs);
        let s = b.loop_var();
        let p1 = b.idx_read(f.rs, f.mapsp1, s, f.f_mapsp1);
        let x1 = b.val_read(f.rp, f.px, p1);
        let p2 = b.idx_read(f.rs, f.mapsp2, s, f.f_mapsp2);
        let x2 = b.val_read(f.rp, f.px, p2);
        b.val_write(
            f.rs,
            f.len,
            s,
            VExpr::Un(
                partir_ir::ast::UnOp::Abs,
                Box::new(VExpr::sub(VExpr::var(x2), VExpr::var(x1))),
            ),
        );
        let l1 = b.finish();

        // Loop 2 (calc_zone_vol): side area from neighbor-side lengths
        // (uncentered read of rs via mapss3), accumulated into the zone
        // volume (uncentered reduction via mapsz).
        let mut b = LoopBuilder::new("calc_zone_vol", f.rs);
        let s = b.loop_var();
        let own = b.val_read(f.rs, f.len, s);
        let prev = b.idx_read(f.rs, f.mapss3, s, f.f_mapss3);
        let lp = b.val_read(f.rs, f.len, prev);
        let a = VExpr::mul(VExpr::Const(0.5), VExpr::mul(VExpr::var(own), VExpr::var(lp)));
        b.val_write(f.rs, f.area, s, a.clone());
        let z = b.idx_read(f.rs, f.mapsz, s, f.f_mapsz);
        b.val_reduce(f.rz, f.vol, z, ReduceOp::Add, a);
        let l2 = b.finish();

        // Loop 3 (point_force): corner forces scattered to both endpoint
        // points — two uncentered reductions through different pointer
        // fields.
        let mut b = LoopBuilder::new("point_force", f.rs);
        let s = b.loop_var();
        let av = b.val_read(f.rs, f.area, s);
        let force = VExpr::mul(VExpr::Const(0.25), VExpr::var(av));
        let p1 = b.idx_read(f.rs, f.mapsp1, s, f.f_mapsp1);
        b.val_reduce(f.rp, f.pf, p1, ReduceOp::Add, force.clone());
        let p2 = b.idx_read(f.rs, f.mapsp2, s, f.f_mapsp2);
        b.val_reduce(
            f.rp,
            f.pf,
            p2,
            ReduceOp::Add,
            VExpr::Un(partir_ir::ast::UnOp::Neg, Box::new(force)),
        );
        let l3 = b.finish();

        // Loop 4 (update_points): advance positions, reset forces.
        let mut b = LoopBuilder::new("update_points", f.rp);
        let p = b.loop_var();
        let xv = b.val_read(f.rp, f.px, p);
        let fv = b.val_read(f.rp, f.pf, p);
        b.val_write(
            f.rp,
            f.px,
            p,
            VExpr::add(VExpr::var(xv), VExpr::mul(VExpr::Const(0.0625), VExpr::var(fv))),
        );
        b.val_write(f.rp, f.pf, p, VExpr::Const(0.0));
        let l4 = b.finish();

        // Loop 5 (update_zones): accumulate energy, reset volumes.
        let mut b = LoopBuilder::new("update_zones", f.rz);
        let z = b.loop_var();
        let vv = b.val_read(f.rz, f.vol, z);
        let ev = b.val_read(f.rz, f.energy, z);
        b.val_write(
            f.rz,
            f.energy,
            z,
            VExpr::add(VExpr::var(ev), VExpr::mul(VExpr::Const(0.5), VExpr::var(vv))),
        );
        b.val_write(f.rz, f.vol, z, VExpr::Const(0.0));
        let l5 = b.finish();

        vec![l1, l2, l3, l4, l5]
    }

    pub fn items(&self) -> f64 {
        self.n_zones as f64
    }

    /// Piece-aligned partitions as `Partition`s.
    pub fn piece_parts(&self) -> PieceParts {
        PieceParts {
            zones: Partition::new(self.rz, self.piece_zones.clone()),
            sides: Partition::new(self.rs, self.piece_sides.clone()),
            points_owned: Partition::new(self.rp, self.piece_points_owned.clone()),
            points_private: Partition::new(self.rp, self.piece_points_private.clone()),
            points_access: Partition::new(self.rp, self.piece_points_access.clone()),
        }
    }

    /// The hints and external bindings of one of the three auto
    /// configurations, for callers that drive the pipeline themselves
    /// (e.g. through the `partir::Partir` builder).
    pub fn hint_setup(&self, config: PennantConfig) -> (Hints, ExtBindings) {
        let parts = self.piece_parts();
        let mut hints = Hints::new();
        let mut exts = ExtBindings::new();
        match config {
            PennantConfig::Auto => {}
            PennantConfig::Hint1 => {
                // Hint 1 (Section 6.5): "an external constraint describing
                // the partitioning of points" — only the generator's point
                // partition. This fixes the shared-points-first data
                // placement (the point loops and homes align with the
                // pieces), but every side/zone/point-access partition is
                // still *derived* by the solver from equal side partitions;
                // the resulting DPL is deeper and the runtime pays for it
                // at scale, as the paper reports beyond 32–64 nodes.
                let pp_own = hints.external("pp", self.rp);
                exts.push(parts.points_owned.clone());
                hints.fact_disj(PExpr::ext(pp_own));
                hints.fact_comp(PExpr::ext(pp_own), self.rp);
            }
            PennantConfig::Hint2 => {
                // Hint 2 reuses the generator's side partition with the
                // image facts for the point maps...
                let rs_p = hints.external("rs_p", self.rs);
                let pp_acc = hints.external("pp_acc", self.rp);
                exts.push(parts.sides.clone());
                exts.push(parts.points_access.clone());
                hints.fact_disj(PExpr::ext(rs_p));
                hints.fact_comp(PExpr::ext(rs_p), self.rs);
                // The access partition covers every point (each point is a
                // corner of some zone), so it can serve as an (aliased)
                // iteration partition for the point-update loop.
                hints.fact_comp(PExpr::ext(pp_acc), self.rp);
                hints.fact_subset(
                    PExpr::image(PExpr::ext(rs_p), FnRef::Fn(self.f_mapsp1), self.rp),
                    PExpr::ext(pp_acc),
                );
                hints.fact_subset(
                    PExpr::image(PExpr::ext(rs_p), FnRef::Fn(self.f_mapsp2), self.rp),
                    PExpr::ext(pp_acc),
                );
                // ...plus the zone partition, the recursive side-neighbor
                // invariants, and the private-point sub-partition.
                let rz_p = hints.external("rz_p", self.rz);
                let rp_p_private = hints.external("rp_p_private", self.rp);
                exts.push(parts.zones.clone());
                exts.push(parts.points_private.clone());
                hints.fact_disj(PExpr::ext(rz_p));
                hints.fact_comp(PExpr::ext(rz_p), self.rz);
                hints.fact_subset(
                    PExpr::image(PExpr::ext(rs_p), FnRef::Fn(self.f_mapsz), self.rz),
                    PExpr::ext(rz_p),
                );
                hints.fact_subset(
                    PExpr::image(PExpr::ext(rs_p), FnRef::Fn(self.f_mapss3), self.rs),
                    PExpr::ext(rs_p),
                );
                hints.fact_subset(
                    PExpr::image(PExpr::ext(rs_p), FnRef::Fn(self.f_mapss4), self.rs),
                    PExpr::ext(rs_p),
                );
                hints.fact_disj(PExpr::ext(rp_p_private));
                hints.fact_subset(
                    PExpr::preimage(self.rs, FnRef::Fn(self.f_mapsp1), PExpr::ext(rp_p_private)),
                    PExpr::ext(rs_p),
                );
                hints.private_sub(self.rp, PExpr::ext(rp_p_private));
            }
        }
        (hints, exts)
    }

    /// Builds the plan for one of the three auto configurations; returns
    /// the plan and the external bindings matching the hint declarations.
    pub fn plan(&self, config: PennantConfig) -> (ParallelPlan, ExtBindings) {
        let (hints, exts) = self.hint_setup(config);
        let plan = auto_parallelize(
            &self.program,
            &self.fns,
            self.store.schema(),
            &hints,
            Options::default(),
        )
        .expect("PENNANT auto-parallelizes");
        (plan, exts)
    }

    /// The hand-optimized strategy: piece partitions everywhere, ghost
    /// point exchange consolidated, zone reductions local, point reductions
    /// buffered over the boundary points only.
    pub fn manual_sim_spec(&self, nodes: usize) -> SimSpec {
        assert_eq!(nodes, self.pieces);
        let parts = self.piece_parts();
        let boundary_sets: Vec<IndexSet> = parts
            .points_access
            .subregions()
            .iter()
            .zip(parts.points_private.subregions())
            .map(|(a, p)| a.difference(p))
            .collect();
        let mut region_sizes = HashMap::new();
        region_sizes.insert(self.rz, self.n_zones);
        region_sizes.insert(self.rs, self.n_sides);
        region_sizes.insert(self.rp, self.n_points);
        let mut initial_home = HashMap::new();
        initial_home.insert(self.rz, parts.zones.clone());
        initial_home.insert(self.rs, parts.sides.clone());
        initial_home.insert(self.rp, parts.points_owned.clone());
        let acc = |region, part: &Partition, kind, group| SimAccess {
            region,
            part: part.clone(),
            kind,
            bytes_per_elem: 8.0,
            group,
            expr_weight: 1.0,
        };
        SimSpec {
            loops: vec![
                SimLoop {
                    name: "calc_lengths".into(),
                    iter: parts.sides.clone(),
                    work_per_iter: 6.0,
                    accesses: vec![
                        acc(self.rp, &parts.points_access, SimKind::Read, Some(1)),
                        acc(self.rs, &parts.sides, SimKind::Write, None),
                    ],
                },
                SimLoop {
                    name: "calc_zone_vol".into(),
                    iter: parts.sides.clone(),
                    work_per_iter: 8.0,
                    accesses: vec![
                        acc(self.rs, &parts.sides, SimKind::Read, None),
                        acc(self.rs, &parts.sides, SimKind::Write, None),
                        acc(self.rz, &parts.zones, SimKind::ReduceDirect, None),
                    ],
                },
                SimLoop {
                    name: "point_force".into(),
                    iter: parts.sides.clone(),
                    work_per_iter: 8.0,
                    accesses: vec![
                        acc(self.rs, &parts.sides, SimKind::Read, None),
                        SimAccess {
                            region: self.rp,
                            part: parts.points_access.clone(),
                            kind: SimKind::ReduceBuffered { buffer_sets: boundary_sets },
                            bytes_per_elem: 8.0,
                            group: Some(2),
                            expr_weight: 1.0,
                        },
                    ],
                },
                SimLoop {
                    name: "update_points".into(),
                    iter: parts.points_owned.clone(),
                    work_per_iter: 4.0,
                    accesses: vec![acc(self.rp, &parts.points_owned, SimKind::Write, None)],
                },
                SimLoop {
                    name: "update_zones".into(),
                    iter: parts.zones.clone(),
                    work_per_iter: 4.0,
                    accesses: vec![acc(self.rz, &parts.zones, SimKind::Write, None)],
                },
            ],
            region_sizes,
            initial_home,
        }
    }
}

/// Field/function handles bundled for loop construction.
struct PennantFields {
    rz: RegionId,
    rs: RegionId,
    rp: RegionId,
    vol: FieldId,
    energy: FieldId,
    px: FieldId,
    pf: FieldId,
    len: FieldId,
    area: FieldId,
    mapsz: FieldId,
    mapsp1: FieldId,
    mapsp2: FieldId,
    mapss3: FieldId,
    f_mapsz: FnId,
    f_mapsp1: FnId,
    f_mapsp2: FnId,
    f_mapss3: FnId,
    #[allow(dead_code)]
    f_mapss4: FnId,
}

/// The generator's piece-aligned partitions.
pub struct PieceParts {
    pub zones: Partition,
    pub sides: Partition,
    pub points_owned: Partition,
    pub points_private: Partition,
    pub points_access: Partition,
}

/// Figure 14e: Manual vs Auto+Hint2 vs Auto+Hint1 vs Auto (pieces = nodes).
pub fn fig14e_series(zw: u64, zy: u64, nodes_list: &[usize]) -> Vec<ScaleSeries> {
    let weights = LoopWeights(vec![6.0, 8.0, 8.0, 4.0, 4.0]);
    let mut series: Vec<ScaleSeries> = ["Manual", "Auto+Hint2", "Auto+Hint1", "Auto"]
        .iter()
        .map(|l| ScaleSeries { label: l.to_string(), points: Vec::new() })
        .collect();
    for &n in nodes_list {
        let app = Pennant::generate(&PennantParams { pieces: n, zw, zy });
        let items = app.items();
        let machine = MachineModel::gpu_cluster(n);

        let res =
            simulate(&app.manual_sim_spec(n), &machine).expect("manual sim spec is well-formed");
        series[0].points.push(ScalePoint {
            nodes: n,
            throughput_per_node: res.throughput_per_node(items, n),
            sim: SimSummary::from_result(&res, &machine),
        });

        for (si, config) in
            [(1, PennantConfig::Hint2), (2, PennantConfig::Hint1), (3, PennantConfig::Auto)]
        {
            let (plan, exts) = app.plan(config);
            let parts = plan.evaluate(&app.store, &app.fns, n, &exts);
            let spec = sim_spec_from_plan(&app.program, &plan, &parts, &app.store, &weights);
            let res = simulate(&spec, &machine).expect("sim spec is well-formed");
            series[si].points.push(ScalePoint {
                nodes: n,
                throughput_per_node: res.throughput_per_node(items, n),
                sim: SimSummary::from_result(&res, &machine),
            });
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_core::pipeline::PlannedReduce;
    use partir_runtime::exec::{execute_program, ExecOptions};

    fn small() -> Pennant {
        Pennant::generate(&PennantParams { pieces: 4, zw: 4, zy: 5 })
    }

    #[test]
    fn generator_invariants() {
        let app = small();
        assert_eq!(app.n_zones, 4 * 4 * 5);
        assert_eq!(app.n_sides, 4 * app.n_zones);
        let parts = app.piece_parts();
        assert!(parts.zones.is_disjoint() && parts.zones.is_complete(app.n_zones));
        assert!(parts.sides.is_disjoint() && parts.sides.is_complete(app.n_sides));
        assert!(parts.points_owned.is_disjoint());
        assert!(parts.points_owned.is_complete(app.n_points));
        assert!(parts.points_private.is_disjoint());
        assert!(parts.points_private.subset_of(&parts.points_access));
        // The hint facts hold on the real mesh.
        let img1 = partir_dpl::ops::image(&app.store, &app.fns, &parts.sides, app.f_mapsp1, app.rp);
        assert!(img1.subset_of(&parts.points_access));
        let img_ss3 =
            partir_dpl::ops::image(&app.store, &app.fns, &parts.sides, app.f_mapss3, app.rs);
        assert!(img_ss3.subset_of(&parts.sides), "sides are neighbor-closed");
        let img_z = partir_dpl::ops::image(&app.store, &app.fns, &parts.sides, app.f_mapsz, app.rz);
        assert!(img_z.subset_of(&parts.zones));
    }

    fn run_both(
        app: &Pennant,
        config: PennantConfig,
        colors: usize,
    ) -> partir_runtime::exec::ExecReport {
        let mut seq = app.store.clone();
        for _ in 0..2 {
            partir_ir::interp::run_program_seq(&app.program, &mut seq, &app.fns);
        }
        let (plan, exts) = app.plan(config);
        let parts = plan.evaluate(&app.store, &app.fns, colors, &exts);
        let mut par = app.store.clone();
        let mut report = partir_runtime::exec::ExecReport::default();
        for _ in 0..2 {
            let r = execute_program(
                &app.program,
                &plan,
                &parts,
                &mut par,
                &app.fns,
                &ExecOptions { n_threads: 4, check_legality: true, ..ExecOptions::default() },
            )
            .expect("parallel pennant");
            report.buffer_bytes += r.buffer_bytes;
            report.guard_hits += r.guard_hits;
        }
        assert_eq!(seq.f64s(app.px), par.f64s(app.px), "{config:?} positions diverged");
        assert_eq!(
            seq.f64s(partir_dpl::region::FieldId(1)),
            par.f64s(partir_dpl::region::FieldId(1)),
            "{config:?} energies diverged"
        );
        report
    }

    #[test]
    fn auto_parallel_matches_sequential() {
        let app = small();
        let report = run_both(&app, PennantConfig::Auto, 4);
        // Auto relaxes the side loops: guarded, no buffers.
        assert_eq!(report.buffer_bytes, 0);
        assert!(report.guard_hits > 0);
    }

    #[test]
    fn hint1_derives_hint2_reuses() {
        let app = small();
        let r1 = run_both(&app, PennantConfig::Hint1, 4);
        let r2 = run_both(&app, PennantConfig::Hint2, 4);
        // Both hint configurations buffer the point reductions over the
        // shared remainder only — Hint1 via the automatically synthesized
        // Theorem 5.1 private sub-partition, Hint2 via the user-provided
        // private points — so the buffer sizes agree (and are tiny).
        assert!(r1.buffer_bytes > 0, "Hint1 buffers point reductions");
        assert!(r2.buffer_bytes > 0, "Hint2 buffers point reductions");
        assert!(
            r2.buffer_bytes <= r1.buffer_bytes,
            "Hint2 never buffers more: {} vs {}",
            r2.buffer_bytes,
            r1.buffer_bytes
        );
        // The distinguishing feature (Section 6.5): Hint1's DPL is deeply
        // derived (preimage/image/difference chains); Hint2's is pure
        // partition reuse.
        let (p1, _) = app.plan(PennantConfig::Hint1);
        let (p2, _) = app.plan(PennantConfig::Hint2);
        let derived_ops = |p: &partir_core::pipeline::ParallelPlan| -> usize {
            p.partition_exprs.iter().map(|e| crate::support::pexpr_weight(e) as usize - 1).sum()
        };
        assert!(derived_ops(&p1) > 0, "{}", p1.render_dpl(&app.fns));
        assert_eq!(
            derived_ops(&p2),
            0,
            "Hint2 synthesizes operator-free DPL:\n{}",
            p2.render_dpl(&app.fns)
        );
    }

    #[test]
    fn hint2_uses_externals_for_sides_and_zones() {
        let app = small();
        let (plan, _) = app.plan(PennantConfig::Hint2);
        let dpl = plan.render_dpl(&app.fns);
        assert!(dpl.contains("rs_p"), "{dpl}");
        assert!(dpl.contains("rz_p"), "{dpl}");
        // Point reductions are BufferedPrivate under Hint2.
        let has_private = plan.loops[2]
            .accesses
            .iter()
            .any(|a| matches!(a.reduce, Some(PlannedReduce::BufferedPrivate { .. })));
        assert!(has_private, "{dpl}");
    }

    #[test]
    fn fig14e_ordering() {
        let series = fig14e_series(16, 64, &[1, 4, 16]);
        let m = series[0].at(16).unwrap();
        let h2 = series[1].at(16).unwrap();
        let h1 = series[2].at(16).unwrap();
        let a = series[3].at(16).unwrap();
        assert!(h2 > 0.8 * m, "Hint2 tracks manual: {h2} vs {m}");
        assert!(a < h1, "Auto below Hint1: {a} vs {h1}");
        assert!(a < 0.7 * m, "Auto collapses: {a} vs {m}");
    }
}
