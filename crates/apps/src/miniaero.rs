//! MiniAero (Section 6.3 / Figure 14c).
//!
//! A proxy for the compressible Navier-Stokes mini-app: a 3D hexahedral
//! mesh where faces are shared between neighboring cells and every face
//! stores pointers to the two cells it separates. The flux loops read face
//! properties and update both adjacent cells through uncentered reductions
//! using two different pointer fields — exactly the Figure 11a pattern —
//! so the Section 5.1 relaxation applies and eliminates reduction buffers
//! completely (the paper states this explicitly).
//!
//! The hand-optimized comparator duplicates boundary faces so each node's
//! faces are contiguous; the auto version partitions the *sequential* mesh,
//! whose face subregions are fragmented at block boundaries — the source of
//! the paper's ~2% average gap.

use crate::support::{sim_spec_from_plan, LoopWeights, ScalePoint, ScaleSeries, SimSummary};
use partir_core::eval::ExtBindings;
use partir_core::pipeline::{auto_parallelize, Hints, Options, ParallelPlan};
use partir_dpl::func::{FnId, FnTable};
use partir_dpl::index_set::IndexSet;
use partir_dpl::ops::equal;
use partir_dpl::partition::Partition;
use partir_dpl::region::{FieldId, FieldKind, RegionId, Schema, Store};
use partir_ir::ast::{Loop, LoopBuilder, ReduceOp, VExpr};
use partir_runtime::sim::{simulate, MachineModel, SimAccess, SimKind, SimLoop, SimSpec};
use std::collections::HashMap;

/// A generated MiniAero instance.
pub struct MiniAero {
    pub store: Store,
    pub fns: FnTable,
    pub program: Vec<Loop>,
    pub cells: RegionId,
    pub faces: RegionId,
    pub q: FieldId,
    pub res: FieldId,
    pub flux: FieldId,
    pub n_cells: u64,
    pub n_faces: u64,
    pub nx: u64,
    pub ny: u64,
    pub nz: u64,
}

pub struct MiniAeroParams {
    pub nx: u64,
    pub ny: u64,
    pub nz: u64,
}

impl Default for MiniAeroParams {
    fn default() -> Self {
        MiniAeroParams { nx: 8, ny: 8, nz: 8 }
    }
}

impl MiniAero {
    /// Generates a periodic `nx × ny × nz` hex mesh. Cells are linearized
    /// `c = (z·ny + y)·nx + x`; faces come in three axis groups of `n`
    /// faces each (`f = axis·n + c`, the face between `c` and its +axis
    /// neighbor) — the "sequential execution" numbering the paper's auto
    /// version uses.
    pub fn generate(p: &MiniAeroParams) -> Self {
        let n = p.nx * p.ny * p.nz;
        let n_faces = 3 * n;
        let mut schema = Schema::new();
        let cells = schema.add_region("Cells", n);
        let faces = schema.add_region("Faces", n_faces);
        let q = schema.add_field(cells, "q", FieldKind::F64);
        let res = schema.add_field(cells, "res", FieldKind::F64);
        let area = schema.add_field(faces, "area", FieldKind::F64);
        let flux = schema.add_field(faces, "flux", FieldKind::F64);
        let left = schema.add_field(faces, "left", FieldKind::Ptr(cells));
        let right = schema.add_field(faces, "right", FieldKind::Ptr(cells));
        let mut fns = FnTable::new();
        let f_left = fns.add_ptr_field("Faces[.].left", faces, cells, left);
        let f_right = fns.add_ptr_field("Faces[.].right", faces, cells, right);

        let mut store = Store::new(schema);
        let idx = |x: u64, y: u64, z: u64| (z * p.ny + y) * p.nx + x;
        for z in 0..p.nz {
            for y in 0..p.ny {
                for x in 0..p.nx {
                    let c = idx(x, y, z);
                    let neighbors = [
                        idx((x + 1) % p.nx, y, z),
                        idx(x, (y + 1) % p.ny, z),
                        idx(x, y, (z + 1) % p.nz),
                    ];
                    for (axis, &nb) in neighbors.iter().enumerate() {
                        let f = axis as u64 * n + c;
                        store.ptrs_mut(left)[f as usize] = c;
                        store.ptrs_mut(right)[f as usize] = nb;
                        store.f64s_mut(area)[f as usize] = 1.0 + (axis as f64) * 0.5;
                    }
                    store.f64s_mut(q)[c as usize] = 1.0 + (c % 9) as f64;
                }
            }
        }

        let program =
            Self::build_loops(cells, faces, q, res, area, flux, left, right, f_left, f_right);
        MiniAero {
            store,
            fns,
            program,
            cells,
            faces,
            q,
            res,
            flux,
            n_cells: n,
            n_faces,
            nx: p.nx,
            ny: p.ny,
            nz: p.nz,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_loops(
        cells: RegionId,
        faces: RegionId,
        q: FieldId,
        res: FieldId,
        area: FieldId,
        flux: FieldId,
        left: FieldId,
        right: FieldId,
        f_left: FnId,
        f_right: FnId,
    ) -> Vec<Loop> {
        // Loop 1 (compute_face_flux): upwind-ish flux from the two adjacent
        // cell states.
        let mut b = LoopBuilder::new("compute_flux", faces);
        let f = b.loop_var();
        let a = b.val_read(faces, area, f);
        let cl = b.idx_read(faces, left, f, f_left);
        let ql = b.val_read(cells, q, cl);
        let cr = b.idx_read(faces, right, f, f_right);
        let qr = b.val_read(cells, q, cr);
        b.val_write(
            faces,
            flux,
            f,
            VExpr::mul(VExpr::var(a), VExpr::sub(VExpr::var(ql), VExpr::var(qr))),
        );
        let l1 = b.finish();

        // Loop 2 (apply_flux): two uncentered reductions through different
        // pointer fields (Figure 11a shape) — the relaxation target.
        let mut b = LoopBuilder::new("apply_flux", faces);
        let f = b.loop_var();
        let fl = b.val_read(faces, flux, f);
        let cl = b.idx_read(faces, left, f, f_left);
        b.val_reduce(
            cells,
            res,
            cl,
            ReduceOp::Add,
            VExpr::Un(partir_ir::ast::UnOp::Neg, Box::new(VExpr::var(fl))),
        );
        let cr = b.idx_read(faces, right, f, f_right);
        b.val_reduce(cells, res, cr, ReduceOp::Add, VExpr::var(fl));
        let l2 = b.finish();

        // Loop 3 (update): q += dt·res; res = 0.
        let mut b = LoopBuilder::new("update", cells);
        let c = b.loop_var();
        let qv = b.val_read(cells, q, c);
        let rv = b.val_read(cells, res, c);
        b.val_write(
            cells,
            q,
            c,
            VExpr::add(VExpr::var(qv), VExpr::mul(VExpr::Const(0.01), VExpr::var(rv))),
        );
        b.val_write(cells, res, c, VExpr::Const(0.0));
        let l3 = b.finish();

        vec![l1, l2, l3]
    }

    pub fn auto_plan(&self) -> ParallelPlan {
        auto_parallelize(
            &self.program,
            &self.fns,
            self.store.schema(),
            &Hints::new(),
            Options::default(),
        )
        .expect("MiniAero auto-parallelizes")
    }

    /// The hand-optimized strategy (Section 6.3): the mesh generator
    /// duplicates boundary faces so each node's faces and cells are
    /// contiguous blocks; flux reductions become node-local (direct), with
    /// one consolidated ghost-cell exchange per neighbor.
    pub fn manual_sim_spec(&self, nodes: usize) -> SimSpec {
        let n = self.n_cells;
        let cell_block = equal(self.cells, n, nodes);
        // Faces of each node: the three axis groups restricted to the
        // node's cells — contiguous in each group (3 runs).
        let face_part = Partition::new(
            self.faces,
            cell_block
                .subregions()
                .iter()
                .map(|s| {
                    let mut acc = IndexSet::new();
                    for axis in 0..3u64 {
                        for &(lo, hi) in s.runs() {
                            acc = acc.union(&IndexSet::from_range(axis * n + lo, axis * n + hi));
                        }
                    }
                    acc
                })
                .collect(),
        );
        // Ghost cells: the +z face of the last plane crosses the block
        // boundary; model one plane per side, consolidated.
        let plane = (self.nx * self.ny).min(n);
        let ghost = Partition::new(
            self.cells,
            cell_block
                .subregions()
                .iter()
                .map(|s| {
                    let hi = s.max().unwrap_or(0);
                    let start = (hi + 1) % n;
                    let end = (start + plane).min(n);
                    let wrapped = if start + plane > n { (start + plane) % n } else { 0 };
                    s.union(&IndexSet::from_range(start, end))
                        .union(&IndexSet::from_range(0, wrapped))
                })
                .collect(),
        );
        let mut region_sizes = HashMap::new();
        region_sizes.insert(self.cells, n);
        region_sizes.insert(self.faces, self.n_faces);
        SimSpec {
            loops: vec![
                SimLoop {
                    name: "compute_flux".into(),
                    iter: face_part.clone(),
                    work_per_iter: 12.0,
                    accesses: vec![
                        SimAccess {
                            region: self.faces,
                            part: face_part.clone(),
                            kind: SimKind::Read,
                            bytes_per_elem: 16.0,
                            group: None,
                            expr_weight: 1.0,
                        },
                        SimAccess {
                            region: self.cells,
                            part: ghost.clone(),
                            kind: SimKind::Read,
                            bytes_per_elem: 8.0,
                            group: Some(1),
                            expr_weight: 1.0,
                        },
                        SimAccess {
                            region: self.faces,
                            part: face_part.clone(),
                            kind: SimKind::Write,
                            bytes_per_elem: 8.0,
                            group: None,
                            expr_weight: 1.0,
                        },
                    ],
                },
                SimLoop {
                    name: "apply_flux".into(),
                    iter: face_part.clone(),
                    work_per_iter: 4.0,
                    accesses: vec![
                        SimAccess {
                            region: self.faces,
                            part: face_part,
                            kind: SimKind::Read,
                            bytes_per_elem: 8.0,
                            group: None,
                            expr_weight: 1.0,
                        },
                        // Duplicated boundary faces make the reduction
                        // node-local up to one ghost plane merged back.
                        SimAccess {
                            region: self.cells,
                            part: ghost,
                            kind: SimKind::ReduceDirect,
                            bytes_per_elem: 8.0,
                            group: Some(2),
                            expr_weight: 1.0,
                        },
                    ],
                },
                SimLoop {
                    name: "update".into(),
                    iter: cell_block.clone(),
                    work_per_iter: 4.0,
                    accesses: vec![SimAccess {
                        region: self.cells,
                        part: cell_block,
                        kind: SimKind::Write,
                        bytes_per_elem: 16.0,
                        group: None,
                        expr_weight: 1.0,
                    }],
                },
            ],
            region_sizes,
            initial_home: HashMap::new(),
        }
    }
}

/// Figure 14c: Manual vs Auto weak scaling; the mesh grows in z.
pub fn fig14c_series(nx: u64, ny: u64, nz_per_node: u64, nodes_list: &[usize]) -> Vec<ScaleSeries> {
    let mut manual = Vec::new();
    let mut auto_ = Vec::new();
    for &n in nodes_list {
        let app = MiniAero::generate(&MiniAeroParams { nx, ny, nz: nz_per_node * n as u64 });
        let items = app.n_cells as f64;
        let machine = MachineModel::gpu_cluster(n);

        let res =
            simulate(&app.manual_sim_spec(n), &machine).expect("manual sim spec is well-formed");
        manual.push(ScalePoint {
            nodes: n,
            throughput_per_node: res.throughput_per_node(items, n),
            sim: SimSummary::from_result(&res, &machine),
        });

        let plan = app.auto_plan();
        let parts = plan.evaluate(&app.store, &app.fns, n, &ExtBindings::new());
        let weights = LoopWeights(vec![12.0, 4.0, 4.0]);
        let spec = sim_spec_from_plan(&app.program, &plan, &parts, &app.store, &weights);
        let res = simulate(&spec, &machine).expect("sim spec is well-formed");
        auto_.push(ScalePoint {
            nodes: n,
            throughput_per_node: res.throughput_per_node(items, n),
            sim: SimSummary::from_result(&res, &machine),
        });
    }
    vec![
        ScaleSeries { label: "Manual".into(), points: manual },
        ScaleSeries { label: "Auto".into(), points: auto_ },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_core::pipeline::PlannedReduce;
    use partir_runtime::exec::{execute_program, ExecOptions};

    #[test]
    fn relaxation_applies_to_flux_reductions() {
        let app = MiniAero::generate(&MiniAeroParams { nx: 4, ny: 4, nz: 4 });
        let plan = app.auto_plan();
        assert!(plan.loops[1].relaxed, "apply_flux is relaxed");
        let guarded = plan.loops[1]
            .accesses
            .iter()
            .filter(|a| matches!(a.reduce, Some(PlannedReduce::Guarded)))
            .count();
        assert_eq!(guarded, 2, "both cell reductions guarded");
        // No buffered reductions anywhere: buffers eliminated completely.
        for lp in &plan.loops {
            for a in &lp.accesses {
                assert!(!matches!(
                    a.reduce,
                    Some(PlannedReduce::Buffered) | Some(PlannedReduce::BufferedPrivate { .. })
                ));
            }
        }
    }

    #[test]
    fn miniaero_parallel_matches_sequential() {
        let app = MiniAero::generate(&MiniAeroParams { nx: 6, ny: 5, nz: 4 });
        let mut seq = app.store.clone();
        for _ in 0..3 {
            partir_ir::interp::run_program_seq(&app.program, &mut seq, &app.fns);
        }
        let plan = app.auto_plan();
        let parts = plan.evaluate(&app.store, &app.fns, 5, &ExtBindings::new());
        let mut par = app.store.clone();
        let mut buffer_bytes = 0u64;
        let mut guard_hits = 0u64;
        for _ in 0..3 {
            let r = execute_program(
                &app.program,
                &plan,
                &parts,
                &mut par,
                &app.fns,
                &ExecOptions { n_threads: 4, check_legality: true, ..ExecOptions::default() },
            )
            .expect("parallel miniaero");
            buffer_bytes += r.buffer_bytes;
            guard_hits += r.guard_hits;
        }
        assert_eq!(seq.f64s(app.q), par.f64s(app.q));
        assert_eq!(seq.f64s(app.flux), par.f64s(app.flux));
        assert_eq!(buffer_bytes, 0, "no reduction buffers");
        assert!(guard_hits > 0);
    }

    #[test]
    fn fig14c_auto_within_a_few_percent_of_manual() {
        let series = fig14c_series(16, 16, 16, &[1, 4, 16]);
        let (manual, auto_) = (&series[0], &series[1]);
        let m = manual.at(16).unwrap();
        let a = auto_.at(16).unwrap();
        // Paper: both ~98% efficient, auto ~2% slower on average.
        assert!(a > 0.80 * m, "gap should be small: auto {a} vs manual {m}");
    }
}
