//! Acceptance test for the fault plane across all five applications:
//! executing each app's auto-parallelized plan under an injected fault
//! schedule must produce final stores bit-identical to the sequential
//! interpreter, and replaying the same `FaultPlan` seed must reproduce the
//! identical `ExecReport` retry/recovery counts.

use partir_core::eval::ExtBindings;
use partir_core::pipeline::ParallelPlan;
use partir_dpl::func::FnTable;
use partir_dpl::region::{FieldData, FieldId, Store};
use partir_ir::ast::Loop;
use partir_ir::interp::run_program_seq;
use partir_runtime::exec::{execute_program, ExecOptions, ExecReport};
use partir_runtime::fault::{FaultPlan, InjectedPanic, RetryPolicy};

fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

struct Fixture {
    name: &'static str,
    program: Vec<Loop>,
    fns: FnTable,
    store: Store,
    plan: ParallelPlan,
    exts: ExtBindings,
    n_colors: usize,
}

fn fixtures() -> Vec<Fixture> {
    use partir_apps::circuit::{Circuit, CircuitParams};
    use partir_apps::miniaero::{MiniAero, MiniAeroParams};
    use partir_apps::pennant::{Pennant, PennantConfig, PennantParams};
    use partir_apps::spmv::{Spmv, SpmvParams};
    use partir_apps::stencil::{Stencil, StencilParams};

    let mut out = Vec::new();

    let app = Spmv::generate(&SpmvParams { rows: 300, halo: 2, ..SpmvParams::default() });
    out.push(Fixture {
        name: "spmv",
        plan: app.auto_plan(),
        program: app.program,
        fns: app.fns,
        store: app.store,
        exts: ExtBindings::new(),
        n_colors: 4,
    });

    let app = Stencil::generate(&StencilParams { nx: 20, ny: 15 });
    out.push(Fixture {
        name: "stencil",
        plan: app.auto_plan(),
        program: app.program,
        fns: app.fns,
        store: app.store,
        exts: ExtBindings::new(),
        n_colors: 4,
    });

    let app = Circuit::generate(&CircuitParams {
        clusters: 3,
        nodes_per_cluster: 40,
        wires_per_cluster: 120,
        cross_fraction: 0.2,
        cross_stride: None,
        seed: 7,
    });
    out.push(Fixture {
        name: "circuit",
        plan: app.auto_plan(),
        program: app.program,
        fns: app.fns,
        store: app.store,
        exts: ExtBindings::new(),
        n_colors: 3,
    });

    let app = MiniAero::generate(&MiniAeroParams { nx: 4, ny: 4, nz: 3 });
    out.push(Fixture {
        name: "miniaero",
        plan: app.auto_plan(),
        program: app.program,
        fns: app.fns,
        store: app.store,
        exts: ExtBindings::new(),
        n_colors: 4,
    });

    let app = Pennant::generate(&PennantParams { pieces: 3, zw: 4, zy: 4 });
    let (plan, exts) = app.plan(PennantConfig::Auto);
    out.push(Fixture {
        name: "pennant",
        plan,
        program: app.program,
        fns: app.fns,
        store: app.store,
        exts,
        n_colors: 3,
    });

    out
}

/// Executes the fixture under `opts` and asserts bit-identity with the
/// sequential interpreter on every f64 field.
fn run_against_seq(fx: &Fixture, opts: &ExecOptions) -> (ExecReport, Store) {
    let parts = fx.plan.evaluate(&fx.store, &fx.fns, fx.n_colors, &fx.exts);

    let mut seq = fx.store.clone();
    run_program_seq(&fx.program, &mut seq, &fx.fns);

    let mut par = fx.store.clone();
    let report = execute_program(&fx.program, &fx.plan, &parts, &mut par, &fx.fns, opts)
        .unwrap_or_else(|e| panic!("{}: execution under faults failed: {e}", fx.name));

    for f in 0..fx.store.schema().num_fields() {
        let fid = FieldId(f as u32);
        if let FieldData::F64(s) = seq.field_data(fid) {
            let FieldData::F64(p) = par.field_data(fid) else { panic!() };
            assert_eq!(s, p, "{}: field {fid:?} diverged under faults", fx.name);
        }
    }
    (report, par)
}

#[test]
fn all_apps_bit_identical_under_faults_with_deterministic_replay() {
    quiet_injected_panics();
    for fx in fixtures() {
        for seed in [1u64, 42] {
            let opts = ExecOptions {
                fault: Some(FaultPlan { seed, task_failure_rate: 0.5, poison_after: Some(4) }),
                retry: RetryPolicy { max_retries: 1, ..RetryPolicy::default() },
                ..ExecOptions::default()
            };
            let (r1, s1) = run_against_seq(&fx, &opts);
            let (r2, s2) = run_against_seq(&fx, &opts);
            assert_eq!(
                format!("{}", r1.to_json()),
                format!("{}", r2.to_json()),
                "{} seed {seed}: replay must reproduce the exact report",
                fx.name
            );
            for f in 0..fx.store.schema().num_fields() {
                let fid = FieldId(f as u32);
                if let FieldData::F64(a) = s1.field_data(fid) {
                    let FieldData::F64(b) = s2.field_data(fid) else { panic!() };
                    assert_eq!(a, b, "{} seed {seed}: replay stores diverged", fx.name);
                }
            }
        }
    }
}

#[test]
fn all_apps_survive_total_failure_via_recovery() {
    for fx in fixtures() {
        let opts = ExecOptions {
            fault: Some(FaultPlan { seed: 9, task_failure_rate: 1.0, poison_after: None }),
            retry: RetryPolicy { max_retries: 0, ..RetryPolicy::default() },
            ..ExecOptions::default()
        };
        let (report, _) = run_against_seq(&fx, &opts);
        assert!(report.degraded, "{}: full failure must degrade", fx.name);
        assert_eq!(
            report.tasks_recovered, report.tasks_run,
            "{}: every task re-runs sequentially",
            fx.name
        );
    }
}
