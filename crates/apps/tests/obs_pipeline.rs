//! Integration test: the auto-parallelization pipeline emits its phase
//! spans in order, and the explanation trace pairs with the DPL program.

use partir_apps::spmv::{Spmv, SpmvParams};
use partir_obs::{install_sink, uninstall_sink, EventKind, MemorySink};
use std::sync::Mutex;

// The sink is process-global; tests that install one serialize on this.
fn sink_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn spmv_pipeline_emits_phase_spans_in_order() {
    let _guard = sink_test_lock();
    let sink = MemorySink::new();
    install_sink(sink.clone(), true, true);

    let app = Spmv::generate(&SpmvParams { rows: 200, halo: 1, ..SpmvParams::default() });
    let plan = app.auto_plan();

    uninstall_sink();
    let events = sink.take();

    // Phase spans open and close in pipeline order, properly nested
    // (each closes before the next opens — the phases are sequential).
    let phase_starts: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart && e.name.starts_with("pipeline."))
        .map(|e| e.name)
        .collect();
    assert_eq!(
        phase_starts,
        vec![
            "pipeline.infer",
            "pipeline.relax",
            "pipeline.unify",
            "pipeline.solve",
            "pipeline.plan",
        ],
        "pipeline phases out of order"
    );
    let phase_ends: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.name.starts_with("pipeline."))
        .map(|e| e.name)
        .collect();
    assert_eq!(phase_ends, phase_starts, "every phase span must close, in order");
    for (i, e) in events.iter().enumerate() {
        if e.kind == EventKind::SpanStart && e.name.starts_with("pipeline.") {
            let end = events[i..]
                .iter()
                .find(|f| f.kind == EventKind::SpanEnd && f.name == e.name)
                .unwrap_or_else(|| panic!("span {} never ends", e.name));
            assert!(end.field("elapsed_ns").is_some());
        }
    }

    // Inference reported the loop it processed; the solver reported its
    // search counters.
    assert!(
        events.iter().any(|e| e.name == "infer.loop"),
        "inference should emit one infer.loop per loop"
    );
    let solve_done =
        events.iter().rev().find(|e| e.name == "solve.done").expect("solver emits solve.done");
    for key in ["nodes", "candidates", "backtracks", "lemma_applications"] {
        assert!(solve_done.field(key).is_some(), "solve.done missing '{key}'");
    }

    // The explanation trace names a rule for every partition symbol and
    // pairs line-for-line with render_dpl's symbols.
    let expl = plan.render_explanation(&app.fns);
    assert!(expl.contains("via "), "explanation names candidate rules:\n{expl}");
    assert!(expl.contains("-- search:"), "explanation ends with search stats:\n{expl}");
    for i in 0..plan.system.num_syms() {
        assert!(expl.contains(&format!("P{i} = ")), "symbol P{i} missing from:\n{expl}");
    }
}

#[test]
fn pipeline_is_silent_without_a_sink() {
    // With no sink installed and no env override, planning emits nothing
    // and still succeeds (the zero-cost path).
    let _guard = sink_test_lock();
    let sink = MemorySink::new();
    install_sink(sink.clone(), false, false);
    let app = Spmv::generate(&SpmvParams { rows: 100, halo: 1, ..SpmvParams::default() });
    let _plan = app.auto_plan();
    uninstall_sink();
    assert!(sink.is_empty(), "disabled sink must see no events");
}
